"""Miss-rate curves: misses as a function of cache size.

A :class:`MissCurve` stores miss *counts* sampled on a uniform size grid
(``chunk_bytes`` per grid step).  Counts, rather than rates, make curves
composable across profiling intervals; MPKI is derived on demand from the
instruction count of the interval the curve was profiled over.

Curves are always non-increasing in size.  Several consumers (Jigsaw's
partitioner, WhirlTool's distance metric) work with the convex hull, which
is the best performance achievable by partitioning within a VC (paper
Sec 4.2, citing Talus).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

__all__ = ["MissCurve", "interp_rows"]


@dataclass
class MissCurve:
    """Misses vs. cache size on a uniform grid.

    Attributes:
        misses: ``misses[i]`` is the number of misses with a cache of
            ``i * chunk_bytes`` bytes.  Non-increasing, length ``n + 1``
            where ``n`` is the number of chunks spanned.
        chunk_bytes: grid granularity in bytes.
        accesses: number of accesses profiled into this curve.
        instructions: instructions executed over the profiling window
            (used to convert counts to per-kilo-instruction rates).
    """

    misses: np.ndarray
    chunk_bytes: int
    accesses: float
    instructions: float
    _hull_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        m = np.asarray(self.misses, dtype=np.float64)
        if m.ndim != 1 or len(m) == 0:
            raise ValueError("misses must be a non-empty 1-D array")
        if self.chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {self.chunk_bytes}")
        # Already-normalized arrays (every curve a cache load hands back)
        # pass through untouched, so memory-mapped payloads stay read-only
        # zero-copy views.  Non-increasing + final value >= 0 implies all
        # values >= 0, making accumulate-then-clip the identity.
        if m[-1] >= 0.0 and bool((m[1:] <= m[:-1]).all()):
            self.misses = m
            return
        # Enforce monotonicity: profiling noise (sampling) can produce tiny
        # upticks; a miss curve is non-increasing by definition.
        m = np.minimum.accumulate(m)
        np.clip(m, 0.0, None, out=m)
        self.misses = m

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zero(
        cls, n_chunks: int, chunk_bytes: int, instructions: float = 1.0
    ) -> "MissCurve":
        """An empty curve (no accesses, no misses) over ``n_chunks`` chunks."""
        return cls(
            misses=np.zeros(n_chunks + 1),
            chunk_bytes=chunk_bytes,
            accesses=0.0,
            instructions=instructions,
        )

    # ------------------------------------------------------------------
    # Size/index conversion
    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        """Number of grid steps (the largest modeled size in chunks)."""
        return len(self.misses) - 1

    @property
    def max_bytes(self) -> int:
        """Largest cache size the curve models."""
        return self.n_chunks * self.chunk_bytes

    def sizes_bytes(self) -> np.ndarray:
        """The size grid, in bytes, matching :attr:`misses`."""
        return np.arange(len(self.misses)) * float(self.chunk_bytes)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def misses_at(self, size_bytes: float) -> float:
        """Misses for a cache of ``size_bytes`` (linear interpolation).

        Sizes beyond the modeled range clamp to the final value.
        """
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        pos = size_bytes / self.chunk_bytes
        if pos >= self.n_chunks:
            return float(self.misses[-1])
        lo = int(pos)
        frac = pos - lo
        return float(self.misses[lo] * (1 - frac) + self.misses[lo + 1] * frac)

    def mpki_at(self, size_bytes: float) -> float:
        """Misses per kilo-instruction at ``size_bytes``."""
        return self.misses_at(size_bytes) * 1000.0 / self.instructions

    @property
    def apki(self) -> float:
        """Accesses per kilo-instruction over the profiling window."""
        return self.accesses * 1000.0 / self.instructions

    def mpki_curve(self) -> np.ndarray:
        """The whole curve as MPKI values on the size grid."""
        return self.misses * 1000.0 / self.instructions

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def convex_hull(self) -> np.ndarray:
        """Lower convex hull of the miss curve (same grid).

        The hull is the best achievable misses-vs-size tradeoff when the
        curve's own capacity may be internally partitioned (Talus); it is
        what the capacity partitioner and WhirlTool's distance metric
        consume.  Computed with a linear-time monotone-chain scan (the
        run-skipping :func:`_lower_convex_hull_fast` variant, bit-identical
        to :func:`_lower_convex_hull`) and cached.
        """
        if self._hull_cache is None:
            self._hull_cache = _lower_convex_hull_fast(self.misses)
        return self._hull_cache

    def hull_curve(self) -> "MissCurve":
        """A new :class:`MissCurve` whose values are the convex hull."""
        return MissCurve(
            misses=self.convex_hull().copy(),
            chunk_bytes=self.chunk_bytes,
            accesses=self.accesses,
            instructions=self.instructions,
        )

    def resampled(self, n_chunks: int) -> "MissCurve":
        """Resample onto a grid with ``n_chunks`` steps over the same span."""
        if n_chunks <= 0:
            raise ValueError(f"n_chunks must be positive, got {n_chunks}")
        old_sizes = self.sizes_bytes()
        new_chunk = self.max_bytes / n_chunks
        new_sizes = np.arange(n_chunks + 1) * new_chunk
        misses = np.interp(new_sizes, old_sizes, self.misses)
        return MissCurve(
            misses=misses,
            chunk_bytes=int(round(new_chunk)),
            accesses=self.accesses,
            instructions=self.instructions,
        )

    def extended(self, n_chunks: int) -> "MissCurve":
        """Extend the grid to ``n_chunks`` steps, padding with the last value."""
        if n_chunks < self.n_chunks:
            raise ValueError("extended() cannot shrink a curve")
        pad = np.full(n_chunks - self.n_chunks, self.misses[-1])
        return MissCurve(
            misses=np.concatenate([self.misses, pad]),
            chunk_bytes=self.chunk_bytes,
            accesses=self.accesses,
            instructions=self.instructions,
        )

    def scaled(self, factor: float) -> "MissCurve":
        """Scale access/miss counts by ``factor`` (e.g. sampling correction)."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return MissCurve(
            misses=self.misses * factor,
            chunk_bytes=self.chunk_bytes,
            accesses=self.accesses * factor,
            instructions=self.instructions,
        )

    def merged_over_time(self, other: "MissCurve") -> "MissCurve":
        """Accumulate two curves profiled over *disjoint time windows*.

        Both counts and instruction windows add.  This is how a whole-run
        curve is built from per-interval curves.  Requires matching grids.
        """
        if other.chunk_bytes != self.chunk_bytes or other.n_chunks != self.n_chunks:
            raise ValueError("merged_over_time requires identical size grids")
        return MissCurve(
            misses=self.misses + other.misses,
            chunk_bytes=self.chunk_bytes,
            accesses=self.accesses + other.accesses,
            instructions=self.instructions + other.instructions,
        )


def map_pair_batches(
    pairs: Iterable[tuple["MissCurve", "MissCurve"]],
    rows_fn: Callable[[list[tuple["MissCurve", "MissCurve"]], int], np.ndarray],
) -> list["MissCurve"]:
    """Shared scaffolding for the batched pair-curve engines.

    Validates that each pair shares ``chunk_bytes``, groups pairs by the
    serial pair-model grid (``max(n_chunks)``), calls ``rows_fn(group,
    n)`` once per group for the ``(B, n + 1)`` result *rate* rows (one
    per pair, in group order), and boxes each row as a
    :class:`MissCurve` with the serial pair rules — ``instructions =
    max`` of the pair, ``accesses`` summed, misses = rate row ×
    instructions.  Both the batched combine and the batched
    partitioned-split engines run through this driver so the grouping
    and boxing rules cannot drift apart.
    """
    pairs = list(pairs)
    results: list[MissCurve | None] = [None] * len(pairs)
    by_grid: dict[tuple[int, int], list[int]] = {}
    for k, (a, b) in enumerate(pairs):
        if a.chunk_bytes != b.chunk_bytes:
            raise ValueError("curves must share chunk_bytes")
        n = max(a.n_chunks, b.n_chunks)
        by_grid.setdefault((a.chunk_bytes, n), []).append(k)
    for (chunk, n), idxs in by_grid.items():
        group = [pairs[k] for k in idxs]
        rows = rows_fn(group, n)
        instr = np.array([max(a.instructions, b.instructions) for a, b in group])
        misses = rows * instr[:, None]
        for row, (k, (a, b)) in enumerate(zip(idxs, group)):
            results[k] = MissCurve(
                misses=misses[row],
                chunk_bytes=chunk,
                accesses=a.accesses + b.accesses,
                instructions=float(instr[row]),
            )
    return results  # type: ignore[return-value]


def interp_rows(matrix: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Row-wise linear interpolation of ``matrix[t]`` at ``pos[t]``.

    The exact arithmetic of :meth:`MissCurve.misses_at` (and of
    ``combine._read``), vectorized across rows: truncate, interpolate,
    clamp past the final column.  Every batched engine that replays a
    scalar interpolation loop (the combine model's read heads, scheme
    accounting) goes through this helper so the float expressions stay
    bit-identical to the serial oracles.

    The domain contract also matches :meth:`MissCurve.misses_at`
    exactly: positions past the final column clamp to it, and negative
    positions raise.  (Int truncation rounds negatives toward zero, so
    without the check a below-domain query would silently *extrapolate*
    off the first segment — diverging from the serial oracle it is
    pinned against.)
    """
    if bool((pos < 0).any()):
        raise ValueError("pos must be non-negative")
    n = matrix.shape[1] - 1
    if n == 0:
        return matrix[:, -1].copy()
    over = pos >= n
    lo = pos.astype(np.int64)
    np.minimum(lo, n - 1, out=lo)
    frac = pos - lo
    rows = np.arange(matrix.shape[0])
    interior = matrix[rows, lo] * (1 - frac) + matrix[rows, lo + 1] * frac
    return np.where(over, matrix[:, -1], interior)


def _lower_convex_hull(values: np.ndarray) -> np.ndarray:
    """Lower convex hull of ``values`` sampled at integer x positions.

    Monotone-chain over the points (i, values[i]); returns the hull
    re-sampled back onto every integer position (piecewise-linear).
    """
    n = len(values)
    if n <= 2:
        return values.astype(np.float64).copy()
    # Hull vertex stack: indices into `values`.
    stack: list[int] = []
    for i in range(n):
        while len(stack) >= 2:
            i0, i1 = stack[-2], stack[-1]
            # Keep i1 only if it lies strictly below segment (i0 -> i).
            lhs = (values[i1] - values[i0]) * (i - i0)
            rhs = (values[i] - values[i0]) * (i1 - i0)
            if lhs >= rhs:  # i1 is on/above the chord: drop it
                stack.pop()
            else:
                break
        stack.append(i)
    xs = np.asarray(stack, dtype=np.float64)
    ys = values[stack].astype(np.float64)
    return np.interp(np.arange(n, dtype=np.float64), xs, ys)


def _lower_convex_hull_fast(values: np.ndarray) -> np.ndarray:
    """Fast lower convex hull, bit-identical to :func:`_lower_convex_hull`.

    Runs the same monotone-chain scan with two exact accelerations:

    - All pop tests for *consecutive* stack tops — the test applied when
      the chain has not popped recently, i.e. almost always on smooth
      curves — are precomputed in one vectorized pass (``(v[j]-v[j-1])*2
      >= (v[j+1]-v[j-1])``, the chord test with ``i0=j-1, i1=j, i=j+1``;
      ``*2``/``*1`` are exact in IEEE so the values match the scalar
      test).  Runs with no pop are bulk-appended at C speed and the
      python loop only touches the stop points.
    - The scalar fallback around stops works on a plain python list
      (identical IEEE doubles, much cheaper indexing than numpy scalars).

    Every chord test evaluated is the same float64 expression on the same
    operands in the same order as the reference scan, so the vertex stack
    — and the interpolated hull — are bit-identical (pinned by the
    Hypothesis property tests).
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n <= 2:
        return values.copy()
    v = values.tolist()
    # stop_tops[j]: incoming j+1 pops top j when the pair (j-1, j) is on
    # top of the stack.  Everywhere else the chain cruises.
    stop_tops = (
        np.nonzero((values[1:-1] - values[:-2]) * 2.0 >= values[2:] - values[:-2])[0]
        + 1
    ).tolist()
    n_stops = len(stop_tops)
    s = 0
    stack = [0]
    # Length of the suffix of `stack` known to hold consecutive indices
    # (an understatement is fine; it only skips the vectorized paths).
    run_len = 1
    i = 1
    while i < n:
        if run_len >= 2 and stack[-1] == i - 1:
            # Cruise: top pair is consecutive, so the precomputed tests
            # apply.  Bulk-push through the pop-free run (empty when the
            # very next point is a stop — fall through to the scalar
            # chain, which performs the identical test and pops).
            while s < n_stops and stop_tops[s] < i - 1:
                s += 1
            run_end = stop_tops[s] - 1 if s < n_stops else n - 1
            if run_end >= i:
                stack.extend(range(i, run_end + 1))
                run_len += run_end - i + 1
                i = run_end + 1
                continue
        vi = v[i]
        while len(stack) >= 2:
            if run_len >= 32:
                # Pop cascade over a consecutive suffix: every test pairs
                # (q-1, q), so all of them vectorize (``* 1`` on the rhs
                # is exact).  Pop the run of top-down successes; the run
                # bottom and deeper vertices stay on the scalar path.
                top = stack[-1]
                m = run_len - 1
                q = np.arange(top - m + 1, top + 1)
                flags = (values[q] - values[q - 1]) * (i - (q - 1)) >= (
                    values[i] - values[q - 1]
                )
                rev = flags[::-1]
                n_pop = m if rev.all() else int(rev.argmin())
                if n_pop:
                    del stack[-n_pop:]
                    run_len -= n_pop
                if n_pop < m:
                    break
                continue
            i1 = stack[-1]
            i0 = stack[-2]
            if (v[i1] - v[i0]) * (i - i0) >= (vi - v[i0]) * (i1 - i0):
                stack.pop()
                run_len = max(run_len - 1, 1)
            else:
                break
        stack.append(i)
        run_len = run_len + 1 if stack[-2] == i - 1 else 1
        i += 1
    if len(stack) == n:
        return values.copy()
    xs = np.asarray(stack, dtype=np.float64)
    return np.interp(np.arange(n, dtype=np.float64), xs, values[stack])


def prime_hull_caches(curves: Iterable["MissCurve"]) -> None:
    """Pre-fill :meth:`MissCurve.convex_hull` caches for ``curves``.

    The batched engines call this once up front so every later
    ``hull_curve()`` — in scheme decisions and in accounting — is a cache
    hit.  Curves whose hull is already cached are skipped; cached values
    are bit-identical to the lazily computed ones.
    """
    for curve in curves:
        if curve._hull_cache is None:
            curve._hull_cache = _lower_convex_hull_fast(curve.misses)
