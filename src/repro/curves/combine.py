"""The Appendix-B combined miss-curve model (paper Listing 1).

Estimates the miss curve of two access streams *sharing* an unpartitioned
LRU cache from their individual miss curves, using the "flow" argument:
lines are pushed toward LRU at a rate equal to the local miss rate, so when
two streams merge, each stream's read head advances in proportion to its
share of the combined flow.

The model is commutative, associative (up to grid interpolation error),
and idempotent on self-similar splits — properties exercised by the unit
and property tests, and shown in Fig 23.

Like the profiler and the partitioner one layer down, the module is
organized as a batched engine plus retained serial oracles:

- :func:`combine_rate_rows` — the batched kernel.  The read-head
  recurrence is inherently sequential over the ``n + 1`` grid steps, but
  each step's interpolation and flow split vectorizes across the batch
  axis, so ``B`` pair-combines cost one pass of length-``B`` array ops
  per step instead of ``B`` python loops.
- :func:`advance_flow_heads` — the K-way head-advance kernel shared with
  S-NUCA's shared-cache accounting: all ``K × B`` read heads move as one
  array per capacity step, with an all-flows-zero early exit.
- :func:`combine_miss_curves_batch` / :func:`shared_cache_misses` — the
  :class:`MissCurve`-level consumers of those kernels.
- :func:`combine_miss_curves` / :func:`shared_cache_misses_reference` —
  the original scalar loops, retained as differential-testing oracles;
  the Hypothesis suites pin the batched paths bit-identical to them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.curves.miss_curve import MissCurve, interp_rows, map_pair_batches

__all__ = [
    "advance_flow_heads",
    "combine_many",
    "combine_miss_curves",
    "combine_miss_curves_batch",
    "combine_rate_rows",
    "shared_cache_misses",
    "shared_cache_misses_reference",
]


def _read(curve: np.ndarray, pos: float) -> float:
    """Linearly interpolate ``curve`` at fractional index ``pos``."""
    n = len(curve) - 1
    if pos >= n:
        return float(curve[n])
    lo = int(pos)
    frac = pos - lo
    return float(curve[lo] * (1 - frac) + curve[lo + 1] * frac)


def combine_miss_curves(a: MissCurve, b: MissCurve) -> MissCurve:
    """Combined miss curve of two pools sharing one cache (Listing 1).

    Both inputs must share the same grid.  The result is on the same grid;
    sizes past the sum of the two working sets saturate at the sum of the
    inputs' floor miss rates.

    This is the scalar per-grid-step loop, retained as the oracle for
    :func:`combine_miss_curves_batch` (which is bit-identical to it).
    """
    if a.chunk_bytes != b.chunk_bytes:
        raise ValueError("curves must share chunk_bytes")
    n = max(a.n_chunks, b.n_chunks)
    m1 = a.extended(n).misses if a.n_chunks < n else a.misses
    m2 = b.extended(n).misses if b.n_chunks < n else b.misses

    # Rates must be comparable: normalize each curve to misses per
    # instruction so pools profiled over different windows combine sanely.
    r1 = m1 / max(a.instructions, 1e-12)
    r2 = m2 / max(b.instructions, 1e-12)
    instructions = max(a.instructions, b.instructions)

    out = np.empty(n + 1, dtype=np.float64)
    s1 = 0.0
    s2 = 0.0
    for s in range(n + 1):
        f1 = _read(r1, s1)
        f2 = _read(r2, s2)
        f = f1 + f2
        out[s] = f
        if f > 0:
            s1 += f1 / f
            s2 += f2 / f
        # If the combined flow is zero both streams have stopped missing;
        # the read heads stay put and the curve stays at zero.
    return MissCurve(
        misses=out * instructions,
        chunk_bytes=a.chunk_bytes,
        accesses=a.accesses + b.accesses,
        instructions=instructions,
    )


def combine_rate_rows(r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Batched Listing-1 recurrence over per-instruction rate rows.

    Args:
        r1, r2: ``(B, n + 1)`` rate rows (misses per instruction on the
            size grid), one pair-combine per row.

    Returns:
        ``(B, n + 1)`` combined rate rows.  Each row is bit-identical to
        the scalar loop in :func:`combine_miss_curves` on the same pair:
        the per-step interpolation, flow sum, and head split are the same
        IEEE expressions evaluated elementwise across the batch.
    """
    r1 = np.ascontiguousarray(r1, dtype=np.float64)
    r2 = np.ascontiguousarray(r2, dtype=np.float64)
    if r1.shape != r2.shape or r1.ndim != 2:
        raise ValueError(f"rate rows must share a (B, n+1) shape, got {r1.shape} vs {r2.shape}")
    batch, width = r1.shape
    out = np.empty((batch, width), dtype=np.float64)
    s1 = np.zeros(batch)
    s2 = np.zeros(batch)
    for s in range(width):
        f1 = interp_rows(r1, s1)
        f2 = interp_rows(r2, s2)
        f = f1 + f2
        out[:, s] = f
        flowing = f > 0.0
        if not flowing.any():
            # Every lane's flow has stopped: the heads are frozen, so all
            # later steps would recompute exactly `f` again — fill and stop.
            out[:, s + 1 :] = f[:, None]
            break
        safe = np.where(flowing, f, 1.0)
        s1 = s1 + np.where(flowing, f1 / safe, 0.0)
        s2 = s2 + np.where(flowing, f2 / safe, 0.0)
    return out


def _combined_group_rows(
    group: list[tuple[MissCurve, MissCurve]], n: int
) -> np.ndarray:
    """One group's combined rate rows for :func:`map_pair_batches`."""
    rows1 = np.empty((len(group), n + 1))
    rows2 = np.empty((len(group), n + 1))
    for row, (a, b) in enumerate(group):
        m1 = a.extended(n).misses if a.n_chunks < n else a.misses
        m2 = b.extended(n).misses if b.n_chunks < n else b.misses
        rows1[row] = m1 / max(a.instructions, 1e-12)
        rows2[row] = m2 / max(b.instructions, 1e-12)
    return combine_rate_rows(rows1, rows2)


def combine_miss_curves_batch(
    pairs: Sequence[tuple[MissCurve, MissCurve]],
) -> list[MissCurve]:
    """Run ``B`` pair-combines at once; bit-identical to the serial oracle.

    Pairs are grouped by their common grid length (``max(n_chunks)`` per
    pair, matching the serial extension rule) and each group runs through
    :func:`combine_rate_rows` in one batch.  Results come back in input
    order and equal ``combine_miss_curves(a, b)`` exactly — misses,
    accesses, and instructions.
    """
    return map_pair_batches(pairs, _combined_group_rows)


def advance_flow_heads(
    rates_flat: np.ndarray, included: np.ndarray, steps: int
) -> np.ndarray:
    """Advance ``K × B`` shared-cache read heads for ``steps`` chunks.

    The K-way generalization of Listing 1's inner loop, vectorized so
    every read head of a whole batch moves in one gather per capacity
    step.  Used by :func:`shared_cache_misses` (``B = 1``) and by
    S-NUCA's interval-batched accounting (``B`` = intervals).

    Args:
        rates_flat: ``(K * B, n + 1)`` rate rows, stream-major (stream
            ``k`` of lane ``b`` at row ``k * B + b``).
        included: ``(K, B)`` mask; excluded streams contribute exactly
            ``0.0`` flow, which keeps the float sums bit-identical to a
            serial evaluation of each lane's included subset.
        steps: capacity chunks to hand out.

    Returns:
        ``(K * B,)`` final head positions.  Lanes whose total flow hits
        zero freeze (all-flows-zero early exit once every lane is done).
    """
    n_streams, batch = included.shape
    heads = np.zeros(n_streams * batch)
    active = included.any(axis=0)
    for __ in range(int(steps)):
        if not active.any():
            break
        flows = interp_rows(rates_flat, heads).reshape(n_streams, batch)
        flows = np.where(included, flows, 0.0)
        # Sequential accumulation over the (small) stream axis keeps the
        # sum order identical to the serial python `sum(flows)`.
        total_flow = np.zeros(batch)
        for k in range(n_streams):
            total_flow = total_flow + flows[k]
        active = active & (total_flow > 0.0)
        if not active.any():
            break
        safe = np.where(active, total_flow, 1.0)
        heads = heads + np.where(active, flows / safe, 0.0).reshape(-1)
    return heads


def shared_cache_misses(
    curves: list[MissCurve], size_bytes: float
) -> list[float]:
    """Per-stream misses when sharing one LRU cache of ``size_bytes``.

    K-way generalization of Listing 1: all read heads advance together,
    each in proportion to its share of the combined flow, until the
    shared capacity is exhausted; each stream's misses are its own curve
    read at its final head position.

    All ``K`` heads move as one array per step (via
    :func:`advance_flow_heads`); bit-identical to the retained scalar
    loop :func:`shared_cache_misses_reference`.
    """
    if not curves:
        return []
    chunk = curves[0].chunk_bytes
    if any(c.chunk_bytes != chunk for c in curves):
        raise ValueError("curves must share chunk_bytes")
    n = max(c.n_chunks for c in curves)
    rates = np.stack(
        [
            (c.extended(n).misses if c.n_chunks < n else c.misses)
            / max(c.instructions, 1e-12)
            for c in curves
        ]
    )
    included = np.ones((len(curves), 1), dtype=bool)
    heads = advance_flow_heads(rates, included, int(size_bytes // chunk))
    finals = interp_rows(rates, heads)
    return [float(v) * c.instructions for v, c in zip(finals, curves)]


def shared_cache_misses_reference(
    curves: list[MissCurve], size_bytes: float
) -> list[float]:
    """The pre-vectorization scalar flow loop (the oracle).

    Same contract as :func:`shared_cache_misses`; advances one head at a
    time with python-float arithmetic.  Retained for differential tests.
    """
    if not curves:
        return []
    chunk = curves[0].chunk_bytes
    if any(c.chunk_bytes != chunk for c in curves):
        raise ValueError("curves must share chunk_bytes")
    n = max(c.n_chunks for c in curves)
    rates = [
        (c.extended(n).misses if c.n_chunks < n else c.misses)
        / max(c.instructions, 1e-12)
        for c in curves
    ]
    heads = [0.0] * len(curves)
    steps = int(size_bytes // chunk)
    for __ in range(steps):
        flows = [_read(r, h) for r, h in zip(rates, heads)]
        f = sum(flows)
        if f <= 0:
            break
        for i, flow in enumerate(flows):
            heads[i] += flow / f
    return [
        float(_read(r, h)) * c.instructions
        for r, h, c in zip(rates, heads, curves)
    ]


def combine_many(curves: list[MissCurve]) -> MissCurve:
    """Combine a list of curves as a balanced tree of batched combines.

    Each tree level pairs adjacent curves and runs all of that level's
    combines through :func:`combine_miss_curves_batch` at once (an odd
    leftover is carried to the next level), so the python-level work is
    ``O(log K)`` batched calls instead of a ``K``-long serial chain.  The
    model is only associative up to grid interpolation error, so the
    tree's values can differ slightly from a left fold's; the tree also
    keeps that error balanced instead of compounding it linearly.
    """
    if not curves:
        raise ValueError("combine_many requires at least one curve")
    level = list(curves)
    while len(level) > 1:
        pairs = [
            (level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        combined = combine_miss_curves_batch(pairs)
        if len(level) % 2:
            combined.append(level[-1])
        level = combined
    return level[0]
