"""The Appendix-B combined miss-curve model (paper Listing 1).

Estimates the miss curve of two access streams *sharing* an unpartitioned
LRU cache from their individual miss curves, using the "flow" argument:
lines are pushed toward LRU at a rate equal to the local miss rate, so when
two streams merge, each stream's read head advances in proportion to its
share of the combined flow.

The model is commutative, associative (up to grid interpolation error),
and idempotent on self-similar splits — properties exercised by the unit
and property tests, and shown in Fig 23.
"""

from __future__ import annotations

import numpy as np

from repro.curves.miss_curve import MissCurve

__all__ = ["combine_miss_curves", "combine_many", "shared_cache_misses"]


def _read(curve: np.ndarray, pos: float) -> float:
    """Linearly interpolate ``curve`` at fractional index ``pos``."""
    n = len(curve) - 1
    if pos >= n:
        return float(curve[n])
    lo = int(pos)
    frac = pos - lo
    return float(curve[lo] * (1 - frac) + curve[lo + 1] * frac)


def combine_miss_curves(a: MissCurve, b: MissCurve) -> MissCurve:
    """Combined miss curve of two pools sharing one cache (Listing 1).

    Both inputs must share the same grid.  The result is on the same grid;
    sizes past the sum of the two working sets saturate at the sum of the
    inputs' floor miss rates.
    """
    if a.chunk_bytes != b.chunk_bytes:
        raise ValueError("curves must share chunk_bytes")
    n = max(a.n_chunks, b.n_chunks)
    m1 = a.extended(n).misses if a.n_chunks < n else a.misses
    m2 = b.extended(n).misses if b.n_chunks < n else b.misses

    # Rates must be comparable: normalize each curve to misses per
    # instruction so pools profiled over different windows combine sanely.
    r1 = m1 / max(a.instructions, 1e-12)
    r2 = m2 / max(b.instructions, 1e-12)
    instructions = max(a.instructions, b.instructions)

    out = np.empty(n + 1, dtype=np.float64)
    s1 = 0.0
    s2 = 0.0
    for s in range(n + 1):
        f1 = _read(r1, s1)
        f2 = _read(r2, s2)
        f = f1 + f2
        out[s] = f
        if f > 0:
            s1 += f1 / f
            s2 += f2 / f
        # If the combined flow is zero both streams have stopped missing;
        # the read heads stay put and the curve stays at zero.
    return MissCurve(
        misses=out * instructions,
        chunk_bytes=a.chunk_bytes,
        accesses=a.accesses + b.accesses,
        instructions=instructions,
    )


def shared_cache_misses(
    curves: list[MissCurve], size_bytes: float
) -> list[float]:
    """Per-stream misses when sharing one LRU cache of ``size_bytes``.

    K-way generalization of Listing 1: all read heads advance together,
    each in proportion to its share of the combined flow, until the
    shared capacity is exhausted; each stream's misses are its own curve
    read at its final head position.
    """
    if not curves:
        return []
    chunk = curves[0].chunk_bytes
    if any(c.chunk_bytes != chunk for c in curves):
        raise ValueError("curves must share chunk_bytes")
    n = max(c.n_chunks for c in curves)
    rates = [
        (c.extended(n).misses if c.n_chunks < n else c.misses)
        / max(c.instructions, 1e-12)
        for c in curves
    ]
    heads = [0.0] * len(curves)
    steps = int(size_bytes // chunk)
    for __ in range(steps):
        flows = [_read(r, h) for r, h in zip(rates, heads)]
        f = sum(flows)
        if f <= 0:
            break
        for i, flow in enumerate(flows):
            heads[i] += flow / f
    return [
        float(_read(r, h)) * c.instructions
        for r, h, c in zip(rates, heads, curves)
    ]


def combine_many(curves: list[MissCurve]) -> MissCurve:
    """Fold :func:`combine_miss_curves` over a list of curves."""
    if not curves:
        raise ValueError("combine_many requires at least one curve")
    acc = curves[0]
    for curve in curves[1:]:
        acc = combine_miss_curves(acc, curve)
    return acc
