"""GMON: hardware-fidelity utility monitors (Beckmann et al., HPCA 2015).

The software profiler in :mod:`repro.curves.reuse` produces exact (or
address-sampled) miss curves with hundreds of points.  Real Jigsaw
hardware uses GMONs: set-sampled monitors with a limited number of
*ways*, yielding a coarse, way-quantized miss curve.  This module models
that fidelity loss so the monitor-resolution sensitivity can be studied
(Whirlpool adds 24 KB of GMONs for its user VCs, Sec 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.curves.miss_curve import MissCurve

__all__ = ["GMON", "quantize_curve"]


def quantize_curve(curve: MissCurve, n_ways: int) -> MissCurve:
    """Reduce a miss curve to ``n_ways`` monitor points.

    The GMON observes misses only at way-granular sizes; software
    linearly interpolates between them.  Endpoints are preserved.
    """
    if n_ways < 2:
        raise ValueError(f"n_ways must be >= 2, got {n_ways}")
    n = curve.n_chunks
    sample_idx = np.unique(
        np.round(np.linspace(0, n, n_ways + 1)).astype(np.int64)
    )
    sampled = curve.misses[sample_idx]
    quantized = np.interp(np.arange(n + 1), sample_idx, sampled)
    return MissCurve(
        misses=quantized,
        chunk_bytes=curve.chunk_bytes,
        accesses=curve.accesses,
        instructions=curve.instructions,
    )


class GMON:
    """A bank of utility monitors with hardware-like resolution.

    Wraps exact per-VC curves the way the hardware would observe them:
    way-quantized and (optionally) set-sampled upstream.

    Args:
        n_ways: monitor ways (curve resolution).  Jigsaw's GMONs use
            tens of ways; 64 is the default here.
    """

    def __init__(self, n_ways: int = 64) -> None:
        if n_ways < 2:
            raise ValueError(f"n_ways must be >= 2, got {n_ways}")
        self.n_ways = n_ways

    def observe(self, curves: dict[int, MissCurve]) -> dict[int, MissCurve]:
        """Quantize a set of per-VC curves to monitor resolution."""
        return {vc: quantize_curve(c, self.n_ways) for vc, c in curves.items()}

    def storage_bits(self, n_vcs: int, counter_bits: int = 32) -> int:
        """Monitor storage for ``n_vcs`` VCs (counters only)."""
        return n_vcs * self.n_ways * counter_bits
