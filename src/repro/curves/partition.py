"""Capacity partitioning over (convex hulls of) cost curves.

Jigsaw sizes VCs by partitioning cache capacity to minimize total latency;
WhirlTool's distance metric needs the *partitioned* miss curve of two
pools (the misses when capacity is split optimally between them, paper
Sec 4.2).  Both reduce to the same primitive: given per-consumer convex
cost-vs-size curves, hand out capacity chunks in order of marginal gain.

On convex curves the greedy is optimal; we always take convex hulls first,
which the paper justifies via Talus-style intra-VC partitioning.

Two interchangeable engines implement the greedy:

- :func:`partition_cost_curves` — the vectorized allocator: batched
  convex hulls, then one global sort of every consumer's marginal-gain
  segments (each hull's gains are non-increasing, so a k-way merge of
  the per-consumer streams *is* a global descending sort) and a single
  ``bincount`` to turn the selected gains into sizes.
- :func:`partition_cost_curves_reference` — the original chunk-at-a-time
  ``heapq`` greedy, retained as the oracle: the property tests pin the
  vectorized engine bit-identical to it, and the perf-smoke benchmark
  gates CI on the speedup.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.curves.miss_curve import (
    MissCurve,
    _lower_convex_hull,
    _lower_convex_hull_fast,
    map_pair_batches,
)

__all__ = [
    "partition_capacity",
    "partition_cost_curves",
    "partition_cost_curves_reference",
    "partitioned_miss_curve",
    "partitioned_miss_curve_batch",
    "partitioned_rate_rows",
]


def _merge_gains_heapq(hulls: list[np.ndarray], total_chunks: int) -> list[int]:
    """Chunk-at-a-time greedy over per-consumer hulls (the oracle merge)."""
    sizes = [0] * len(hulls)
    # Max-heap of (negative marginal gain, consumer, next size).
    heap: list[tuple[float, int, int]] = []
    for k, hull in enumerate(hulls):
        if len(hull) > 1:
            gain = hull[0] - hull[1]
            heapq.heappush(heap, (-gain, k, 1))
    remaining = total_chunks
    while remaining > 0 and heap:
        neg_gain, k, nxt = heapq.heappop(heap)
        if -neg_gain <= 0.0:
            break  # no curve benefits from more capacity
        sizes[k] = nxt
        remaining -= 1
        hull = hulls[k]
        if nxt + 1 < len(hull):
            gain = hull[nxt] - hull[nxt + 1]
            heapq.heappush(heap, (-gain, k, nxt + 1))
    return sizes


def partition_cost_curves_reference(
    cost_curves: list[np.ndarray], total_chunks: int
) -> tuple[list[int], float]:
    """The pre-vectorization allocator (per-curve hulls + heapq greedy).

    Kept as the differential-testing oracle for
    :func:`partition_cost_curves`; same contract, no input validation.
    """
    hulls = [_lower_convex_hull(np.asarray(c, dtype=np.float64)) for c in cost_curves]
    sizes = _merge_gains_heapq(hulls, total_chunks)
    total_cost = sum(float(h[s]) for h, s in zip(hulls, sizes))
    return sizes, total_cost


def partition_cost_curves(
    cost_curves: list[np.ndarray], total_chunks: int
) -> tuple[list[int], float]:
    """Split ``total_chunks`` among consumers to minimize total cost.

    Args:
        cost_curves: one cost-vs-size array per consumer (index = chunks,
            value = cost at that size).  Each is convex-hulled internally.
            Must be non-empty, and every curve needs at least two points
            (a single point has no size axis to allocate along).
        total_chunks: capacity to distribute; must be positive.

    Returns:
        ``(sizes, total_cost)`` — chunks given to each consumer (summing to
        at most ``total_chunks``; capacity beyond every curve's saturation
        point is left unallocated) and the resulting total cost.

    Raises:
        ValueError: on an empty curve list, non-positive ``total_chunks``,
            or a curve with fewer than two points.
    """
    if not len(cost_curves):
        raise ValueError("cost_curves must not be empty")
    if total_chunks <= 0:
        raise ValueError(f"total_chunks must be positive, got {total_chunks}")
    arrays = []
    for k, curve in enumerate(cost_curves):
        arr = np.asarray(curve, dtype=np.float64)
        if arr.ndim != 1 or len(arr) < 2:
            raise ValueError(
                f"cost curve {k} must be 1-D with at least 2 points, "
                f"got shape {arr.shape}"
            )
        arrays.append(arr)
    hulls = [_lower_convex_hull_fast(a) for a in arrays]
    # Marginal gain of each consumer's next chunk.  Convexity makes every
    # stream non-increasing mathematically, but hull re-interpolation can
    # break that by an ulp; the running minimum restores it *and* keeps
    # the global sort exactly equivalent to the chunk-at-a-time heap
    # greedy: a gain sitting behind a smaller predecessor only reaches
    # the heap's frontier once the predecessor is taken, i.e. it
    # effectively inherits the prefix minimum as its priority.
    gains = [np.minimum.accumulate(h[:-1] - h[1:]) for h in hulls]
    neg = -np.concatenate(gains)
    owner = np.repeat(np.arange(len(hulls)), [g.size for g in gains])
    # Stable sort on descending gain: ties keep concatenation order,
    # which is exactly the heap's (gain, consumer, size) tie-break —
    # lower consumer index first, then smaller size.  The greedy stops
    # at the first non-positive gain, so only the strictly-positive
    # prefix is allocatable.
    order = np.argsort(neg, kind="stable")
    useful = int(np.searchsorted(neg[order], 0.0, side="left"))
    chosen = order[: min(useful, total_chunks)]
    counts = np.bincount(owner[chosen], minlength=len(hulls))
    sizes = [int(c) for c in counts]
    total_cost = sum(float(h[s]) for h, s in zip(hulls, sizes))
    return sizes, total_cost


def partition_capacity(
    curves: list[MissCurve], total_bytes: float
) -> tuple[list[int], float]:
    """Partition ``total_bytes`` among miss curves to minimize total misses.

    Counts are normalized to rates (misses per instruction) so that curves
    profiled over different windows are comparable.

    Returns:
        ``(sizes_bytes, total_miss_rate)``.
    """
    if not curves:
        return [], 0.0
    chunk = curves[0].chunk_bytes
    if any(c.chunk_bytes != chunk for c in curves):
        raise ValueError("all curves must share chunk_bytes")
    cost = [c.misses / max(c.instructions, 1e-12) for c in curves]
    total_chunks = int(total_bytes // chunk)
    if total_chunks <= 0:
        # No whole chunk to hand out: everyone sits at their size-0 cost.
        return [0] * len(curves), sum(float(c[0]) for c in cost)
    sizes, total_cost = partition_cost_curves(cost, total_chunks)
    return [s * chunk for s in sizes], total_cost


def partitioned_rate_rows(
    hulls_a: np.ndarray, hulls_b: np.ndarray
) -> np.ndarray:
    """Optimal-split cost rows for ``B`` pairs of convex-hull rows.

    Args:
        hulls_a, hulls_b: ``(B, n + 1)`` lower-convex-hull rows (rates on
            the size grid), one pair per row.

    Returns:
        ``(B, n + 1)`` rows where ``row[S]`` is the minimum total rate
        from splitting ``S`` chunks between the pair's hulls.  Each row
        is bit-identical to the serial merged-gains scan in
        :func:`partitioned_miss_curve`: one row-wise sort of the merged
        marginal gains and one cumsum per pair, clipped at the pair's
        floor rate.
    """
    hulls_a = np.ascontiguousarray(hulls_a, dtype=np.float64)
    hulls_b = np.ascontiguousarray(hulls_b, dtype=np.float64)
    if hulls_a.shape != hulls_b.shape or hulls_a.ndim != 2:
        raise ValueError(
            f"hull rows must share a (B, n+1) shape, got "
            f"{hulls_a.shape} vs {hulls_b.shape}"
        )
    batch, width = hulls_a.shape
    n = width - 1
    best = np.empty((batch, width), dtype=np.float64)
    best[:, 0] = hulls_a[:, 0] + hulls_b[:, 0]
    if n > 0:
        gains = np.concatenate(
            [
                hulls_a[:, :-1] - hulls_a[:, 1:],
                hulls_b[:, :-1] - hulls_b[:, 1:],
            ],
            axis=1,
        )
        merged = np.sort(gains, axis=1)[:, ::-1]
        cum = np.cumsum(merged[:, :n], axis=1)
        best[:, 1:] = best[:, :1] - cum
    floor = hulls_a[:, -1] + hulls_b[:, -1]
    np.clip(best, floor[:, None], None, out=best)
    return best


def partitioned_miss_curve_batch(
    pairs: list[tuple[MissCurve, MissCurve]],
) -> list[MissCurve]:
    """Run ``B`` optimal-split curves at once; bit-identical to the oracle.

    Pairs are grouped by their common grid; within a group each distinct
    curve's rate hull is primed once with the run-skipping monotone-chain
    hull (``_lower_convex_hull_fast``, bit-identical to the reference
    scan) and reused across every pair it appears in, then one
    :func:`partitioned_rate_rows` call covers the whole group.  Results
    equal ``partitioned_miss_curve(a, b)`` exactly.
    """
    return map_pair_batches(pairs, _partitioned_group_rows)


def _partitioned_group_rows(
    group: list[tuple[MissCurve, MissCurve]], n: int
) -> np.ndarray:
    """One group's optimal-split rows for :func:`map_pair_batches`.

    Hull priming: one hull per distinct curve in the group, not per
    pair, so a curve appearing in many pairs is hulled once.
    """
    hull_cache: dict[int, np.ndarray] = {}

    def rate_hull(c: MissCurve) -> np.ndarray:
        cached = hull_cache.get(id(c))
        if cached is None:
            ext = c.extended(n) if c.n_chunks < n else c
            cached = _lower_convex_hull_fast(
                ext.misses / max(c.instructions, 1e-12)
            )
            hull_cache[id(c)] = cached
        return cached

    rows_a = np.stack([rate_hull(a) for a, __ in group])
    rows_b = np.stack([rate_hull(b) for __, b in group])
    return partitioned_rate_rows(rows_a, rows_b)


def partitioned_miss_curve(a: MissCurve, b: MissCurve) -> MissCurve:
    """Miss curve of two pools under *optimal partitioning* (paper Sec 4.2).

    ``result.misses[S]`` is the minimum total misses achievable by
    splitting ``S`` chunks between the two pools (using each pool's convex
    hull).  This lower-bounds the combined (shared) curve; the gap between
    the two is WhirlTool's distance metric.

    Normalization matches :func:`repro.curves.combine.combine_miss_curves`
    so the two curves can be subtracted directly.
    """
    if a.chunk_bytes != b.chunk_bytes:
        raise ValueError("curves must share chunk_bytes")
    n = max(a.n_chunks, b.n_chunks)
    ca = a.extended(n) if a.n_chunks < n else a
    cb = b.extended(n) if b.n_chunks < n else b
    instructions = max(a.instructions, b.instructions)
    ra = _lower_convex_hull(ca.misses / max(a.instructions, 1e-12))
    rb = _lower_convex_hull(cb.misses / max(b.instructions, 1e-12))
    gains_a = -np.diff(ra)
    gains_b = -np.diff(rb)
    merged = np.sort(np.concatenate([gains_a, gains_b]))[::-1]
    # Best total rate at S chunks = floor rate - sum of the S best gains,
    # clipped at the number of useful chunks.
    best = np.empty(n + 1, dtype=np.float64)
    best[0] = ra[0] + rb[0]
    cum = np.cumsum(merged[:n]) if n > 0 else np.array([])
    best[1:] = best[0] - cum
    floor = ra[-1] + rb[-1]
    np.clip(best, floor, None, out=best)
    return MissCurve(
        misses=best * instructions,
        chunk_bytes=a.chunk_bytes,
        accesses=a.accesses + b.accesses,
        instructions=instructions,
    )
