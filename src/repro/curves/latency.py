"""End-to-end memory latency curves (paper Sec 2.4).

Jigsaw partitions capacity using *latency* curves, not miss curves: the
total latency of a VC is VC access latency (access rate × network + bank
latency) plus memory latency (miss rate × miss penalty).  This makes the
partitioner leave far-away banks unused when their miss-rate benefit does
not pay for their network latency (e.g. dt in Fig 4), and — with the
Whirlpool bypass extension — allocate zero capacity to streaming pools.

Curves here are expressed as *data-stall cycles per instruction* (CPI),
matching Fig 8b / Fig 9b / Fig 11b-c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.curves.miss_curve import MissCurve

__all__ = ["LatencyModel", "latency_curve"]

#: Type of the "reach" function: avg one-way hops from the owning core to
#: the banks used by a VC of the given size in bytes.
HopsFn = Callable[[float], float]


@dataclass(frozen=True)
class LatencyModel:
    """Latency parameters of the simulated memory system (Table 3).

    Attributes:
        bank_latency: LLC bank access latency, cycles.
        hop_latency: one-way per-hop NoC latency (router + link), cycles.
        mem_latency: DRAM zero-load latency beyond the LLC, cycles.
        mem_hops: average one-way hops from a core to a memory controller.
    """

    bank_latency: float = 9.0
    hop_latency: float = 5.0
    mem_latency: float = 120.0
    mem_hops: float = 3.0

    def llc_access_latency(self, avg_hops: float) -> float:
        """Round-trip latency of one LLC access placed ``avg_hops`` away."""
        return self.bank_latency + 2.0 * self.hop_latency * avg_hops

    @property
    def miss_penalty(self) -> float:
        """Additional latency of going to main memory."""
        return self.mem_latency + 2.0 * self.hop_latency * self.mem_hops


def latency_curve(
    curve: MissCurve,
    avg_hops: HopsFn,
    model: LatencyModel,
    bypassable: bool = False,
    hops: np.ndarray | None = None,
) -> np.ndarray:
    """Data-stall CPI vs. VC size, on the miss curve's grid.

    Args:
        curve: the VC's miss curve for the interval.
        avg_hops: reach function — average one-way hops to the closest
            banks covering a given size (from :mod:`repro.nuca.geometry`).
        model: latency parameters.
        bypassable: if True, the size-0 point models *bypassing*: accesses
            skip the LLC entirely, paying only the memory penalty (this is
            the paper's one-line change that makes the partitioner choose
            bypassing exactly when it wins, Sec 3.2/3.3).
        hops: precomputed ``avg_hops`` values on the curve's size grid.
            The reach function is pure, so callers stepping many
            intervals on one grid (e.g. Jigsaw) can evaluate it once and
            reuse the vector.

    Returns:
        float array, ``stalls[i]`` = data-stall cycles per instruction at
        size ``i * curve.chunk_bytes``.
    """
    instr = max(curve.instructions, 1e-12)
    if hops is None:
        sizes = curve.sizes_bytes()
        hops = np.array([avg_hops(s) for s in sizes])
    access_lat = model.bank_latency + 2.0 * model.hop_latency * hops
    stalls = (curve.accesses * access_lat + curve.misses * model.miss_penalty) / instr
    if bypassable:
        # All accesses go straight to memory: no bank/NoC detour.
        stalls = stalls.copy()
        stalls[0] = curve.accesses * model.miss_penalty / instr
    return stalls
