"""Stack-distance (reuse-distance) profiling.

The stack distance of an access is the number of *distinct* cache lines
referenced since the previous access to the same line.  Under fully
associative LRU, an access hits in a cache of S lines iff its stack
distance is < S, so the histogram of stack distances *is* the miss-rate
curve (Mattson et al.).  Jigsaw's hardware GMON monitors approximate this
curve per VC; here we compute it in software, exactly or approximately
via address sampling, which is both faster and closer to what a sampled
hardware monitor sees.

Two exact engines are provided:

- :func:`stack_distances` — the production engine.  Mattson's algorithm
  reduces to offline 2D dominance counting: with ``prev[i]`` the index of
  the previous access to ``lines[i]`` (or -1), every distinct line in the
  reuse window of a non-cold access has exactly one first-touch inside
  the window, so its distance is::

      #{j < i : prev[j] <= prev[i]} - (prev[i] + 1)

  The dominance counts for all accesses are resolved at once by a
  batched wavelet sweep over position bits (:func:`_dominance_counts`),
  giving O(n log n) work with NumPy-level constants and no per-access
  Python loop.
- :func:`stack_distances_reference` — the original per-access Fenwick
  sweep, kept as a slow, independently-derived oracle for tests and the
  perf gate.
"""

from __future__ import annotations

import numpy as np

from repro.curves.fenwick import FenwickTree
from repro.curves.miss_curve import MissCurve

__all__ = [
    "IntervalBucketAccumulator",
    "StackDistanceProfiler",
    "distance_bucket_counts",
    "miss_curve_from_bucket_counts",
    "miss_curve_from_distances",
    "stack_distances",
    "stack_distances_reference",
]

#: Stack distance reported for cold (first-touch) accesses.
COLD = np.iinfo(np.int64).max


def stack_distances_reference(lines: np.ndarray) -> np.ndarray:
    """Exact stack distances via a per-access Fenwick sweep (oracle).

    Args:
        lines: integer array of cache-line addresses, in access order.

    Returns:
        int64 array of the same length; cold misses get :data:`COLD`.
    """
    lines = np.asarray(lines)
    n = len(lines)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last_pos: dict[int, int] = {}
    add = tree.add
    range_sum = tree.range_sum
    for i, addr in enumerate(lines.tolist()):
        prev = last_pos.get(addr)
        if prev is not None:
            # Distinct lines touched strictly between prev and i: each has
            # exactly one "last access" marker in (prev, i).
            out[i] = range_sum(prev + 1, i - 1)
            add(prev, -1)
        add(i, 1)
        last_pos[addr] = i
    return out


def _key_order(keys: np.ndarray, cold: np.ndarray, cold_rank: np.ndarray) -> np.ndarray:
    """Stable argsort of ``keys`` in O(n), for the engine's key layout.

    Exploits the structure of previous-occurrence keys: non-cold keys are
    distinct, and ties occur only among cold keys, whose relative order is
    supplied as ``cold_rank`` (rank of each cold element among equal-key
    cold elements, in position order).
    """
    n = len(keys)
    kk = (keys + 1).astype(np.int64)
    cnt = np.bincount(kk, minlength=n + 1)
    starts = np.cumsum(cnt) - cnt
    slot = starts[kk] + np.where(cold, cold_rank, 0)
    order = np.empty(n, dtype=np.int64)
    order[slot] = np.arange(n, dtype=np.int64)
    return order


def _wavelet_level(v, nxt, shift, width, scratch):
    """One counting/partition level over ``v`` (2D: rows x width).

    For every element, adds the number of earlier same-row elements whose
    level bit is 0 while its own is 1 (packed into the element's low
    bits), then stable-partitions each row by the bit into ``nxt``.
    ``scratch`` provides three preallocated int32 buffers of v.size.
    """
    rows, _ = v.shape
    one, ones_cum, dest = (s[: v.size].reshape(v.shape) for s in scratch)
    np.bitwise_and(
        (v >> shift).astype(np.int32, copy=False), np.int32(1), out=one
    )
    np.cumsum(one, axis=1, dtype=np.int32, out=ones_cum)
    col = np.arange(width, dtype=np.int32)
    # zeros_before = col - ones_cum; contribution = (zeros_before + 1) for
    # elements with bit 1; destination = zeros_before for bit 0, or
    # (zeros_total + ones_before) for bit 1.
    np.subtract(col, ones_cum, out=dest)  # dest holds zeros_before
    contrib = np.add(dest, 1, out=np.empty_like(dest))
    np.multiply(contrib, one, out=contrib)
    vv = v + contrib  # upcasts to v's dtype
    zeros_total = width - ones_cum[:, -1:]
    np.subtract(ones_cum, dest, out=ones_cum)
    np.add(ones_cum, zeros_total - 1, out=ones_cum)
    np.multiply(ones_cum, one, out=ones_cum)
    np.add(dest, ones_cum, out=dest)
    base = (np.arange(rows, dtype=np.int32) * np.int32(width))[:, None]
    np.add(dest, base, out=dest)
    nxt.reshape(-1)[dest.ravel()] = vv.ravel()


def _dominance_counts(keys: np.ndarray, order: np.ndarray) -> np.ndarray:
    """``counts[i] = #{j < i : keys[j] <= keys[i]}`` (ties by position).

    ``order`` must be the stable argsort of ``keys``.  The counts are a
    2D dominance between the position order and the key order, resolved
    by a wavelet-style sweep over position bits: positions are split into
    chunks of ``C = 2^logC``; a first pass over chunk-id bits (elements
    read in key order) counts cross-chunk pairs and, as a side effect,
    groups elements by chunk; a second, fully rectangular pass over the
    low position bits counts within-chunk pairs.  Each element carries
    ``position << 32 | count`` packed in one int64 (an int32 analogue in
    the second pass), so every level is one cumsum, a few fused
    arithmetic passes, and one scatter; the final layout is the identity
    permutation, leaving each element's count at its own position.
    """
    n = len(keys)
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    logC = max(1, min(15, (n - 1).bit_length()))
    C = 1 << logC
    n_chunks = -(-n // C)
    m = n_chunks * C
    if m > n:
        # Sentinel elements: positions past the end, keys above everything
        # (appended at the end of the key order).  They keep every chunk
        # exactly C elements; their counts are sliced off at the end.
        order = np.concatenate([order, np.arange(n, m, dtype=order.dtype)])
    scratch = [np.empty(m, dtype=np.int32) for _ in range(3)]
    packed = order.astype(np.int64) << 32
    spare = np.empty_like(packed)
    # Pass 1: chunk-id bits (== position bits above logC), elements in key
    # order.  Segments are key-prefix classes: every chunk holds exactly C
    # elements, so all segments are full except the trailing one, which is
    # handled as a 1-row level of its own width.
    for b in range((n_chunks - 1).bit_length() - 1, -1, -1):
        width = C << (b + 1)
        shift = np.int64(32 + logC + b)
        rows = m // width
        mainlen = rows * width
        if rows:
            _wavelet_level(
                packed[:mainlen].reshape(rows, width),
                spare[:mainlen],
                shift,
                width,
                scratch,
            )
        if mainlen < m:
            _wavelet_level(
                packed[mainlen:].reshape(1, m - mainlen),
                spare[mainlen:],
                shift,
                m - mainlen,
                scratch,
            )
        packed, spare = spare, packed
    # Pass 1 grouped elements by chunk (stable in key order); drain its
    # counts, then re-pack per-chunk local positions into int32 words
    # (local position << logC | count; both fit in logC <= 15 bits).
    counts = np.empty(m, dtype=np.int64)
    counts[packed >> 32] = packed & 0xFFFFFFFF
    packed32 = (((packed >> 32) & (C - 1)) << logC).astype(np.int32)
    spare32 = np.empty_like(packed32)
    # Pass 2: low position bits.  Each chunk's low bits are a permutation
    # of [0, C), so every level is perfectly balanced and rectangular.
    for b in range(logC - 1, -1, -1):
        width = 1 << (b + 1)
        _wavelet_level(
            packed32.reshape(-1, width), spare32, logC + b, width, scratch
        )
        packed32, spare32 = spare32, packed32
    counts[:n] += packed32[:n] & np.int32(C - 1)
    return counts[:n]


def _prev_occurrence(lines: np.ndarray, regions: np.ndarray | None = None) -> np.ndarray:
    """Index of the previous access to the same line (-1 if none).

    With ``regions``, "same line" means same (region, line) pair, so each
    region's stream is chained independently.
    """
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    lo = int(lines.min())
    span = int(lines.max()) - lo + 1
    if regions is None:
        # An unstable sort of (line * n + position) is a stable sort of
        # lines, and quicksort beats the stable radix path.
        if span <= (2**62) // max(n, 1):
            order = np.argsort((lines - lo) * np.int64(n) + np.arange(n, dtype=np.int64))
        else:
            order = np.argsort(lines, kind="stable")
        sl = lines[order]
        same = sl[1:] == sl[:-1]
    else:
        rspan = int(regions.max()) + 1 if len(regions) else 1
        if span * rspan <= 2**62:
            key = (regions.astype(np.int64) * span + (lines - lo)).astype(np.int64)
            order = np.argsort(key, kind="stable")
        else:
            order = np.lexsort((lines, regions))
        sl = lines[order]
        sr = regions[order]
        same = (sl[1:] == sl[:-1]) & (sr[1:] == sr[:-1])
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _distances_from_prev(prev: np.ndarray, base: np.ndarray | int = 0) -> np.ndarray:
    """Distances from a previous-occurrence array.

    ``base`` is each access's segment start (0 for a single stream).  A
    cold access is keyed at ``base - 1`` so that, inside its segment, it
    sorts below every real ``prev`` index but above everything in earlier
    segments — the dominance count then telescopes per segment.
    """
    n = len(prev)
    out = np.full(n, COLD, dtype=np.int64)
    cold = prev < 0
    if n == 0 or cold.all():
        return out
    base = np.asarray(base, dtype=np.int64)
    keys = np.where(cold, base - 1, prev)
    # Ties occur only among cold keys of the same segment; their stable
    # rank is their cold-appearance order within the segment.
    cold_cum = np.concatenate(([0], np.cumsum(cold)))
    cold_rank = cold_cum[:-1] - cold_cum[base] if base.ndim else cold_cum[:-1]
    counts = _dominance_counts(keys, _key_order(keys, cold, cold_rank))
    hot = ~cold
    out[hot] = counts[hot] - keys[hot] - 1
    return out


def stack_distances(lines: np.ndarray) -> np.ndarray:
    """Exact stack distances for a sequence of line addresses.

    Vectorized Mattson engine (see the module docstring); produces
    bit-identical output to :func:`stack_distances_reference`.

    Args:
        lines: integer array of cache-line addresses, in access order.

    Returns:
        int64 array of the same length; cold misses get :data:`COLD`.
    """
    lines = np.ascontiguousarray(lines)
    return _distances_from_prev(_prev_occurrence(lines))


def miss_curve_from_distances(
    distances: np.ndarray,
    chunk_bytes: int,
    n_chunks: int,
    instructions: float,
    line_bytes: int = 64,
    scale: float = 1.0,
    distance_scale: float = 1.0,
) -> MissCurve:
    """Convert a stack-distance array into a :class:`MissCurve`.

    ``misses[i]`` counts accesses whose distance (in bytes, at
    ``line_bytes`` per distinct line) is >= ``i * chunk_bytes``, i.e. the
    misses of an ``i``-chunk LRU cache.  Cold misses count at every size.

    Args:
        distances: output of :func:`stack_distances` (line-granular).
        chunk_bytes: grid step of the resulting curve.
        n_chunks: number of grid steps.
        instructions: instruction count of the profiling window.
        line_bytes: bytes per cache line.
        scale: multiply counts (sampling correction).
        distance_scale: multiply distances (set-sampling correction: a
            distance observed on a 1/2^k-sampled address stream estimates
            a true distance 2^k times larger).
    """
    hist, n_cold, n_total = distance_bucket_counts(
        distances, chunk_bytes, n_chunks, line_bytes, distance_scale
    )
    return miss_curve_from_bucket_counts(
        hist, n_cold, n_total, chunk_bytes, n_chunks, instructions, scale
    )


def distance_bucket_counts(
    distances: np.ndarray,
    chunk_bytes: int,
    n_chunks: int,
    line_bytes: int = 64,
    distance_scale: float = 1.0,
) -> tuple[np.ndarray, int, int]:
    """Histogram distances into miss-curve size buckets.

    The additive half of :func:`miss_curve_from_distances`: bucket
    histograms are plain integer counts, so an out-of-core profiler can
    accumulate them chunk by chunk and finalize once with
    :func:`miss_curve_from_bucket_counts` — bit-identical to bucketing
    the concatenated distances in one call.

    Returns:
        ``(hist, n_cold, n_total)`` — int64 histogram of length
        ``n_chunks + 2`` over non-cold accesses, the cold-miss count,
        and the total access count.
    """
    distances = np.asarray(distances, dtype=np.float64)
    lines_per_chunk = chunk_bytes / line_bytes
    cold = distances >= float(COLD)
    # An access with distance d misses at size i chunks iff
    # d >= i * lines_per_chunk; its "first hitting size" bucket is
    # floor(d / lines_per_chunk) + 1 == ceil((d + eps) / lines_per_chunk).
    scaled_dist = distances[~cold] * distance_scale
    buckets = np.ceil(scaled_dist / lines_per_chunk + 1e-12).astype(np.int64)
    buckets = np.clip(buckets, 1, n_chunks + 1)
    hist = np.bincount(buckets, minlength=n_chunks + 2)
    return hist, int(np.count_nonzero(cold)), len(distances)


def miss_curve_from_bucket_counts(
    hist: np.ndarray,
    n_cold: int,
    n_accesses: int,
    chunk_bytes: int,
    n_chunks: int,
    instructions: float,
    scale: float = 1.0,
) -> MissCurve:
    """Finalize accumulated bucket counts into a :class:`MissCurve`.

    Args:
        hist: integer bucket histogram (length ``n_chunks + 2``), summed
            over any number of :func:`distance_bucket_counts` calls.
        n_cold: total cold misses.
        n_accesses: total profiled accesses (cold included).
        chunk_bytes / n_chunks / instructions / scale: as in
            :func:`miss_curve_from_distances`.
    """
    hist = np.asarray(hist).astype(np.float64)
    cum = np.cumsum(hist)
    total = cum[-1]
    # misses[i] = (# accesses whose bucket > i) + cold misses.
    misses = (total - cum[: n_chunks + 1]) + float(n_cold)
    return MissCurve(
        misses=misses * scale,
        chunk_bytes=chunk_bytes,
        accesses=float(n_accesses) * scale,
        instructions=instructions,
    )


class IntervalBucketAccumulator:
    """Grow-able per-interval bucket-count accumulation for one stream.

    The additive integer state behind the out-of-core and online
    profiling engines: per profiling interval, a distance-bucket
    histogram (:func:`distance_bucket_counts`), cold/sampled counters,
    and the unsampled access count.  Because every field is a plain
    integer count, accumulation commutes — chunks can arrive in any
    split — and new interval rows can be *appended* while earlier ones
    keep accumulating, which is what lets an online profiler open
    epochs as data arrives instead of fixing the interval grid up
    front.  :meth:`interval_curve` finalizes one interval through
    :func:`miss_curve_from_bucket_counts` plus the engines' shared
    unsampled-access rescale, bit-identical to bucketing that
    interval's distances in a single call.
    """

    def __init__(self, n_chunks: int, n_intervals: int = 0) -> None:
        if n_chunks < 0:
            raise ValueError(f"n_chunks must be >= 0, got {n_chunks}")
        if n_intervals < 0:
            raise ValueError(f"n_intervals must be >= 0, got {n_intervals}")
        self.n_chunks = n_chunks
        self.hist = np.zeros((n_intervals, n_chunks + 2), dtype=np.int64)
        self.cold = np.zeros(n_intervals, dtype=np.int64)
        self.sampled = np.zeros(n_intervals, dtype=np.int64)
        self.accesses = np.zeros(n_intervals, dtype=np.int64)

    @property
    def n_intervals(self) -> int:
        """Interval rows currently open."""
        return len(self.cold)

    def ensure_intervals(self, n_intervals: int) -> None:
        """Grow (never shrink) to ``n_intervals`` zero-initialized rows."""
        grow = n_intervals - self.n_intervals
        if grow <= 0:
            return
        self.hist = np.vstack(
            [self.hist, np.zeros((grow, self.n_chunks + 2), dtype=np.int64)]
        )
        zeros = np.zeros(grow, dtype=np.int64)
        self.cold = np.concatenate([self.cold, zeros])
        self.sampled = np.concatenate([self.sampled, zeros])
        self.accesses = np.concatenate([self.accesses, zeros])

    def add_accesses(self, interval: int, count: int) -> None:
        """Count ``count`` unsampled accesses into ``interval``."""
        self.accesses[interval] += count

    def add_distances(
        self,
        interval: int,
        distances: np.ndarray,
        chunk_bytes: int,
        line_bytes: int = 64,
        distance_scale: float = 1.0,
    ) -> None:
        """Bucket one batch of sampled distances into ``interval``."""
        h, n_cold, n_acc = distance_bucket_counts(
            distances,
            chunk_bytes,
            self.n_chunks,
            line_bytes,
            distance_scale=distance_scale,
        )
        self.hist[interval] += h
        self.cold[interval] += n_cold
        self.sampled[interval] += n_acc

    def interval_curve(
        self,
        interval: int,
        chunk_bytes: int,
        instructions: float,
        scale: float = 1.0,
    ) -> MissCurve:
        """Finalize one interval's counts into a :class:`MissCurve`.

        Shares the float pipeline (and the exact operation order) of
        :class:`StackDistanceProfiler.profile`: bucket counts finalize
        through :func:`miss_curve_from_bucket_counts`, then the access
        count is rescaled to the true unsampled count so APKI stays
        exact under address sampling.  Intervals with no sampled access
        degrade to the flat all-miss curve, exactly like the in-memory
        engine.
        """
        n_acc = int(self.accesses[interval])
        n_samp = int(self.sampled[interval])
        if n_samp > 0:
            curve = miss_curve_from_bucket_counts(
                self.hist[interval],
                int(self.cold[interval]),
                n_samp,
                chunk_bytes,
                self.n_chunks,
                instructions,
                scale=scale,
            )
            # Same unsampled-access rescale as the in-memory engine, in
            # the same operation order.
            ratio = n_acc / curve.accesses
            return MissCurve(
                misses=curve.misses * ratio,
                chunk_bytes=curve.chunk_bytes,
                accesses=float(n_acc),
                instructions=curve.instructions,
            )
        return MissCurve(
            misses=np.full(self.n_chunks + 1, float(n_acc)),
            chunk_bytes=chunk_bytes,
            accesses=float(n_acc),
            instructions=instructions,
        )


class StackDistanceProfiler:
    """Profiles a trace into per-region, per-interval miss-rate curves.

    This plays the role of Jigsaw's GMON utility monitors and of the
    WhirlTool profiler: it observes a stream of (line address, region id)
    pairs, split into fixed-length intervals, and produces a
    :class:`MissCurve` per (region, interval).

    Address sampling: with ``sample_shift = k``, only lines whose hash
    falls in 1/2^k of the hash space are profiled, and counts are scaled
    by 2^k.  This mirrors set-sampled hardware monitors (UMON/GMON) and
    keeps profiling fast on long traces.  ``sample_shift = 0`` is exact.

    :meth:`profile` makes a single vectorized pass over the whole trace:
    one sample mask, one previous-occurrence computation over composite
    (region, line) keys, and one dominance-counting sweep produce every
    region's distances at once; per-region, per-interval curves are then
    cheap histogram reductions over views of that one distance array.
    """

    def __init__(
        self,
        chunk_bytes: int,
        n_chunks: int,
        line_bytes: int = 64,
        sample_shift: int = 0,
    ) -> None:
        if sample_shift < 0:
            raise ValueError(f"sample_shift must be >= 0, got {sample_shift}")
        self.chunk_bytes = chunk_bytes
        self.n_chunks = n_chunks
        self.line_bytes = line_bytes
        self.sample_shift = sample_shift

    # A multiplicative hash keeps sampled lines spread across the space
    # even for strided address streams.
    _HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

    def _sample_mask(self, lines: np.ndarray) -> np.ndarray:
        if self.sample_shift == 0:
            return np.ones(len(lines), dtype=bool)
        hashed = (lines.astype(np.uint64) * self._HASH_MULT) >> np.uint64(
            64 - self.sample_shift
        )
        return hashed == 0

    def profile(
        self,
        lines: np.ndarray,
        regions: np.ndarray,
        instructions: float,
        n_intervals: int = 1,
    ) -> dict[int, list[MissCurve]]:
        """Profile a trace.

        Distances are computed over each region's *own* access stream for
        the whole trace (monitors are per-VC), then counts are split into
        ``n_intervals`` equal access-index windows.

        Args:
            lines: line addresses in access order.
            regions: region id per access (same length as ``lines``).
            instructions: total instructions over the trace.
            n_intervals: number of equal time windows.

        Returns:
            Mapping ``region id -> [MissCurve, ...]`` (one per interval).
        """
        lines = np.asarray(lines)
        regions = np.asarray(regions)
        if len(lines) != len(regions):
            raise ValueError("lines and regions must have equal length")
        n = len(lines)
        scale = float(1 << self.sample_shift)
        instr_per_interval = instructions / n_intervals
        bounds = np.linspace(0, n, n_intervals + 1).astype(np.int64)
        region_ids = np.unique(regions)

        # Unsampled per-(region, interval) access counts, for exact APKI.
        ridx = np.searchsorted(region_ids, regions)
        interval_of = np.repeat(np.arange(n_intervals), np.diff(bounds))
        acc_counts = np.bincount(
            ridx * n_intervals + interval_of,
            minlength=len(region_ids) * n_intervals,
        ).reshape(len(region_ids), n_intervals)

        # One pass for every region: group the sampled accesses by region
        # (stable, so each segment stays in stream order), chain previous
        # occurrences over (region, line) keys, and resolve all distances
        # in a single dominance-counting sweep.
        keep = self._sample_mask(lines)
        kept_idx = np.nonzero(keep)[0]
        gorder = np.argsort(regions[kept_idx], kind="stable")
        g_src = kept_idx[gorder]
        g_regions = regions[g_src]
        prev = _prev_occurrence(np.ascontiguousarray(lines[g_src]), g_regions)
        seg_starts = np.searchsorted(g_regions, region_ids, side="left")
        seg_ends = np.searchsorted(g_regions, region_ids, side="right")
        base = np.repeat(seg_starts, seg_ends - seg_starts)
        dist = _distances_from_prev(prev, base)

        out: dict[int, list[MissCurve]] = {}
        for r, rid in enumerate(region_ids.tolist()):
            r_dist = dist[seg_starts[r] : seg_ends[r]]
            r_src = g_src[seg_starts[r] : seg_ends[r]]  # ascending
            curves: list[MissCurve] = []
            for t in range(n_intervals):
                lo, hi = bounds[t], bounds[t + 1]
                wlo, whi = np.searchsorted(r_src, [lo, hi], side="left")
                n_acc = int(acc_counts[r, t])
                curve = miss_curve_from_distances(
                    r_dist[wlo:whi],
                    chunk_bytes=self.chunk_bytes,
                    n_chunks=self.n_chunks,
                    instructions=instr_per_interval,
                    line_bytes=self.line_bytes,
                    scale=scale,
                    distance_scale=scale,
                )
                # Rescale access count to the true (unsampled) count so
                # APKI is exact even when miss counts are approximate.
                if curve.accesses > 0:
                    ratio = n_acc / curve.accesses
                    curve = MissCurve(
                        misses=curve.misses * ratio,
                        chunk_bytes=curve.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=curve.instructions,
                    )
                else:
                    curve = MissCurve(
                        misses=np.full(self.n_chunks + 1, float(n_acc)),
                        chunk_bytes=self.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=instr_per_interval,
                    )
                curves.append(curve)
            out[int(rid)] = curves
        return out

    def profile_combined(
        self, lines: np.ndarray, instructions: float, n_intervals: int = 1
    ) -> list[MissCurve]:
        """Profile the whole trace as a single region (S-NUCA's view)."""
        regions = np.zeros(len(lines), dtype=np.int32)
        return self.profile(lines, regions, instructions, n_intervals)[0]
