"""Stack-distance (reuse-distance) profiling.

The stack distance of an access is the number of *distinct* cache lines
referenced since the previous access to the same line.  Under fully
associative LRU, an access hits in a cache of S lines iff its stack
distance is < S, so the histogram of stack distances *is* the miss-rate
curve (Mattson et al.).  Jigsaw's hardware GMON monitors approximate this
curve per VC; here we compute it in software, exactly (Fenwick-tree
Mattson, O(n log n)) or approximately via address sampling, which is both
faster and closer to what a sampled hardware monitor sees.
"""

from __future__ import annotations

import numpy as np

from repro.curves.fenwick import FenwickTree
from repro.curves.miss_curve import MissCurve

__all__ = [
    "StackDistanceProfiler",
    "miss_curve_from_distances",
    "stack_distances",
]

#: Stack distance reported for cold (first-touch) accesses.
COLD = np.iinfo(np.int64).max


def stack_distances(lines: np.ndarray) -> np.ndarray:
    """Exact stack distances for a sequence of line addresses.

    Args:
        lines: integer array of cache-line addresses, in access order.

    Returns:
        int64 array of the same length; cold misses get :data:`COLD`.
    """
    lines = np.asarray(lines)
    n = len(lines)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last_pos: dict[int, int] = {}
    add = tree.add
    range_sum = tree.range_sum
    for i, addr in enumerate(lines.tolist()):
        prev = last_pos.get(addr)
        if prev is not None:
            # Distinct lines touched strictly between prev and i: each has
            # exactly one "last access" marker in (prev, i).
            out[i] = range_sum(prev + 1, i - 1)
            add(prev, -1)
        add(i, 1)
        last_pos[addr] = i
    return out


def miss_curve_from_distances(
    distances: np.ndarray,
    chunk_bytes: int,
    n_chunks: int,
    instructions: float,
    line_bytes: int = 64,
    scale: float = 1.0,
    distance_scale: float = 1.0,
) -> MissCurve:
    """Convert a stack-distance array into a :class:`MissCurve`.

    ``misses[i]`` counts accesses whose distance (in bytes, at
    ``line_bytes`` per distinct line) is >= ``i * chunk_bytes``, i.e. the
    misses of an ``i``-chunk LRU cache.  Cold misses count at every size.

    Args:
        distances: output of :func:`stack_distances` (line-granular).
        chunk_bytes: grid step of the resulting curve.
        n_chunks: number of grid steps.
        instructions: instruction count of the profiling window.
        line_bytes: bytes per cache line.
        scale: multiply counts (sampling correction).
        distance_scale: multiply distances (set-sampling correction: a
            distance observed on a 1/2^k-sampled address stream estimates
            a true distance 2^k times larger).
    """
    distances = np.asarray(distances, dtype=np.float64)
    lines_per_chunk = chunk_bytes / line_bytes
    cold = distances >= float(COLD)
    # An access with distance d misses at size i chunks iff
    # d >= i * lines_per_chunk; its "first hitting size" bucket is
    # floor(d / lines_per_chunk) + 1 == ceil((d + eps) / lines_per_chunk).
    scaled_dist = distances[~cold] * distance_scale
    buckets = np.ceil(scaled_dist / lines_per_chunk + 1e-12).astype(np.int64)
    buckets = np.clip(buckets, 1, n_chunks + 1)
    hist = np.bincount(buckets, minlength=n_chunks + 2).astype(np.float64)
    cum = np.cumsum(hist)
    total = cum[-1]
    # misses[i] = (# accesses whose bucket > i) + cold misses.
    misses = (total - cum[: n_chunks + 1]) + float(np.count_nonzero(cold))
    return MissCurve(
        misses=misses * scale,
        chunk_bytes=chunk_bytes,
        accesses=float(len(distances)) * scale,
        instructions=instructions,
    )


class StackDistanceProfiler:
    """Profiles a trace into per-region, per-interval miss-rate curves.

    This plays the role of Jigsaw's GMON utility monitors and of the
    WhirlTool profiler: it observes a stream of (line address, region id)
    pairs, split into fixed-length intervals, and produces a
    :class:`MissCurve` per (region, interval).

    Address sampling: with ``sample_shift = k``, only lines whose hash
    falls in 1/2^k of the hash space are profiled, and counts are scaled
    by 2^k.  This mirrors set-sampled hardware monitors (UMON/GMON) and
    keeps profiling fast on long traces.  ``sample_shift = 0`` is exact.
    """

    def __init__(
        self,
        chunk_bytes: int,
        n_chunks: int,
        line_bytes: int = 64,
        sample_shift: int = 0,
    ) -> None:
        if sample_shift < 0:
            raise ValueError(f"sample_shift must be >= 0, got {sample_shift}")
        self.chunk_bytes = chunk_bytes
        self.n_chunks = n_chunks
        self.line_bytes = line_bytes
        self.sample_shift = sample_shift

    # A multiplicative hash keeps sampled lines spread across the space
    # even for strided address streams.
    _HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

    def _sample_mask(self, lines: np.ndarray) -> np.ndarray:
        if self.sample_shift == 0:
            return np.ones(len(lines), dtype=bool)
        hashed = (lines.astype(np.uint64) * self._HASH_MULT) >> np.uint64(
            64 - self.sample_shift
        )
        return hashed == 0

    def profile(
        self,
        lines: np.ndarray,
        regions: np.ndarray,
        instructions: float,
        n_intervals: int = 1,
    ) -> dict[int, list[MissCurve]]:
        """Profile a trace.

        Distances are computed over each region's *own* access stream for
        the whole trace (monitors are per-VC), then counts are split into
        ``n_intervals`` equal access-index windows.

        Args:
            lines: line addresses in access order.
            regions: region id per access (same length as ``lines``).
            instructions: total instructions over the trace.
            n_intervals: number of equal time windows.

        Returns:
            Mapping ``region id -> [MissCurve, ...]`` (one per interval).
        """
        lines = np.asarray(lines)
        regions = np.asarray(regions)
        if len(lines) != len(regions):
            raise ValueError("lines and regions must have equal length")
        n = len(lines)
        scale = float(1 << self.sample_shift)
        instr_per_interval = instructions / n_intervals
        bounds = np.linspace(0, n, n_intervals + 1).astype(np.int64)

        out: dict[int, list[MissCurve]] = {}
        for rid in np.unique(regions).tolist():
            sel = regions == rid
            idx = np.nonzero(sel)[0]
            r_lines = lines[idx]
            keep = self._sample_mask(r_lines)
            kept_idx = idx[keep]
            dist = stack_distances(r_lines[keep])
            curves: list[MissCurve] = []
            for t in range(n_intervals):
                lo, hi = bounds[t], bounds[t + 1]
                window = (kept_idx >= lo) & (kept_idx < hi)
                # Accesses-in-interval (unsampled) for accurate APKI.
                n_acc = int(np.count_nonzero((idx >= lo) & (idx < hi)))
                curve = miss_curve_from_distances(
                    dist[window],
                    chunk_bytes=self.chunk_bytes,
                    n_chunks=self.n_chunks,
                    instructions=instr_per_interval,
                    line_bytes=self.line_bytes,
                    scale=scale,
                    distance_scale=scale,
                )
                # Rescale access count to the true (unsampled) count so
                # APKI is exact even when miss counts are approximate.
                if curve.accesses > 0:
                    ratio = n_acc / curve.accesses
                    curve = MissCurve(
                        misses=curve.misses * ratio,
                        chunk_bytes=curve.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=curve.instructions,
                    )
                else:
                    curve = MissCurve(
                        misses=np.full(self.n_chunks + 1, float(n_acc)),
                        chunk_bytes=self.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=instr_per_interval,
                    )
                curves.append(curve)
            out[int(rid)] = curves
        return out

    def profile_combined(
        self, lines: np.ndarray, instructions: float, n_intervals: int = 1
    ) -> list[MissCurve]:
        """Profile the whole trace as a single region (S-NUCA's view)."""
        regions = np.zeros(len(lines), dtype=np.int32)
        return self.profile(lines, regions, instructions, n_intervals)[0]
