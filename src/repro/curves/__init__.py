"""Cache modeling: miss-rate curves and the machinery built on them.

This package is the analytical heart of the reproduction.  Jigsaw (and
therefore Whirlpool) reasons about the cache exclusively through per-VC
miss-rate curves and an additive latency model (paper Sec 2.4); WhirlTool's
distance metric is defined through combined vs. partitioned miss curves
(paper Sec 4.2 and Appendix B).

Modules
-------
- :mod:`repro.curves.fenwick` — Fenwick (binary indexed) tree.
- :mod:`repro.curves.reuse` — stack-distance (reuse-distance) profiling:
  a vectorized batched Mattson engine, the per-access Fenwick reference
  oracle, and the address-sampled approximation.
- :mod:`repro.curves.miss_curve` — the :class:`MissCurve` container.
- :mod:`repro.curves.combine` — Appendix B / Listing 1 combined-curve model.
- :mod:`repro.curves.partition` — convex-hull capacity partitioning and
  partitioned miss curves.
- :mod:`repro.curves.latency` — end-to-end latency (data-stall CPI) curves.
"""

from repro.curves.combine import (
    combine_many,
    combine_miss_curves,
    combine_miss_curves_batch,
    shared_cache_misses,
    shared_cache_misses_reference,
)
from repro.curves.fenwick import FenwickTree
from repro.curves.gmon import GMON, quantize_curve
from repro.curves.latency import LatencyModel, latency_curve
from repro.curves.miss_curve import MissCurve, interp_rows
from repro.curves.partition import (
    partition_capacity,
    partition_cost_curves,
    partition_cost_curves_reference,
    partitioned_miss_curve,
    partitioned_miss_curve_batch,
)
from repro.curves.reuse import (
    StackDistanceProfiler,
    miss_curve_from_distances,
    stack_distances,
    stack_distances_reference,
)

__all__ = [
    "FenwickTree",
    "GMON",
    "quantize_curve",
    "LatencyModel",
    "MissCurve",
    "StackDistanceProfiler",
    "combine_many",
    "combine_miss_curves",
    "combine_miss_curves_batch",
    "interp_rows",
    "latency_curve",
    "miss_curve_from_distances",
    "partition_capacity",
    "partition_cost_curves",
    "partition_cost_curves_reference",
    "partitioned_miss_curve",
    "partitioned_miss_curve_batch",
    "shared_cache_misses",
    "shared_cache_misses_reference",
    "stack_distances",
    "stack_distances_reference",
]
