"""Fenwick (binary indexed) tree over integer positions.

Used by the exact Mattson stack-distance algorithm in
:mod:`repro.curves.reuse`: one bit per trace position marks whether that
position is the *most recent* access to some line, and a prefix-sum query
counts the distinct lines touched since a previous access.
"""

from __future__ import annotations


class FenwickTree:
    """A Fenwick tree supporting point updates and prefix-sum queries.

    Positions are 0-based and fixed at construction time.  All operations
    are O(log n).
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        """Number of addressable positions."""
        return self._size

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the value at ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions ``[0, index]``.

        ``index == -1`` returns 0 (the empty prefix).
        """
        if index >= self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        total = 0
        i = index + 1
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of values at positions ``[lo, hi]`` inclusive."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum of all values in the tree."""
        if self._size == 0:
            return 0
        return self.prefix_sum(self._size - 1)
