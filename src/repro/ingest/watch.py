"""Follow a live text trace (growing file or stdin) as an unbounded source.

The ingestion side of Online Whirlpool: :func:`open_stream_source`
turns ``stdin`` or a file that is still being written into an
*unbounded* :class:`~repro.ingest.source.IterableSource` —
``n_records`` is ``None`` and records are parsed as they appear — and
:func:`run_watch` drives :class:`~repro.core.whirltool.online.
OnlineWhirlTool` over it, emitting pool assignments as each epoch
seals (the ``python -m repro ingest watch`` command).

Only the text formats (lackey / csv / jsonl) are followable: they are
what live instrumentation pipes emit, and they can be parsed a line at
a time without a record count up front.  Line parsing matches the
sized readers in :mod:`repro.ingest.formats` exactly, so a capture
classified live and the same capture ingested after the fact see the
same records.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Iterator, TextIO

import numpy as np

from repro.ingest.formats import _LACKEY_DATA_OPS, _parse_int
from repro.ingest.source import IterableSource, TraceChunk

__all__ = ["follow_lines", "open_stream_source", "run_watch"]

#: Records per emitted chunk while following.
DEFAULT_BATCH_RECORDS = 4096


def follow_lines(
    stream: TextIO,
    poll_interval: float = 0.5,
    idle_timeout: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[str]:
    """Yield lines from ``stream``, waiting for more at EOF (``tail -f``).

    Args:
        stream: a text stream positioned where following should start.
        poll_interval: seconds to sleep between EOF re-reads.
        idle_timeout: stop after this many seconds with no new data;
            ``None`` follows forever (until the caller breaks), and
            ``0`` reads exactly what is there now and stops — the mode
            batch tests and one-shot pipes use.
        sleep: injectable for tests.
    """
    idle = 0.0
    while True:
        line = stream.readline()
        if line:
            idle = 0.0
            # A final line without a newline may still be mid-write;
            # hold it until the writer finishes it or goes idle.
            if not line.endswith("\n"):
                buffered = line
                while idle_timeout is None or idle < idle_timeout:
                    rest = stream.readline()
                    if rest:
                        buffered += rest
                        if buffered.endswith("\n"):
                            break
                        continue
                    if idle_timeout == 0:
                        break
                    sleep(poll_interval)
                    idle += poll_interval
                yield buffered
                idle = 0.0
                continue
            yield line
            continue
        if idle_timeout is not None and idle >= idle_timeout:
            return
        if idle_timeout == 0:
            return
        sleep(poll_interval)
        idle += poll_interval


# ----------------------------------------------------------------------
# Line parsers (one record per text line, matching the sized readers)
# ----------------------------------------------------------------------


def _parse_lackey(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s or s[0] == "=":
        return None
    op = s[0]
    if op not in _LACKEY_DATA_OPS:
        return None  # instruction fetches and noise are not data records
    addr_text = s[1:].strip().split(",", 1)[0].strip()
    if not addr_text:
        raise ValueError(f"malformed lackey record: {line!r}")
    try:
        return int(addr_text, 16), None
    except ValueError:
        raise ValueError(f"malformed lackey record: {line!r}") from None


def _parse_csv(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s:
        return None
    cols = [c.strip() for c in s.split(",")]
    try:
        addr = _parse_int(cols[0])
    except ValueError:
        if cols[0].lower() in ("addr", "address"):
            return None  # header line
        raise ValueError(f"malformed csv record: {line!r}") from None
    region = _parse_int(cols[1]) if len(cols) > 1 and cols[1] else None
    return addr, region


def _parse_jsonl(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s:
        return None
    try:
        obj = json.loads(s)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON record: {exc}") from None
    if not isinstance(obj, dict) or "addr" not in obj:
        raise ValueError(
            f"expected an object with an 'addr' field, got {s[:60]!r}"
        )
    addr = obj["addr"]
    region = obj.get("region")
    for key, value in (("addr", addr), ("region", region)):
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            raise ValueError(
                f"{key!r} must be a JSON integer, got {value!r}"
            )
    return addr, region


_PARSERS: dict[str, Callable[[str], tuple[int, int | None] | None]] = {
    "lackey": _parse_lackey,
    "csv": _parse_csv,
    "jsonl": _parse_jsonl,
}


def _chunks_from_lines(
    lines: Iterator[str],
    fmt: str,
    batch_records: int,
) -> Iterator[TraceChunk]:
    """Batch parsed (addr, region) records into :class:`TraceChunk`\\ s.

    A chunk carries regions when *any* of its records has one (bare
    records in a mixed stream default to region 0, like unattributed
    sources profiled as a single region).
    """
    parse = _PARSERS[fmt]
    addrs: list[int] = []
    regions: list[int] = []
    saw_region = False
    for line in lines:
        rec = parse(line)
        if rec is None:
            continue
        addr, region = rec
        addrs.append(addr)
        regions.append(region if region is not None else 0)
        saw_region = saw_region or region is not None
        if len(addrs) >= batch_records:
            yield _chunk(addrs, regions, saw_region)
            addrs, regions = [], []
    if addrs:
        yield _chunk(addrs, regions, saw_region)


def _chunk(
    addrs: list[int], regions: list[int], saw_region: bool
) -> TraceChunk:
    return TraceChunk(
        addrs=np.array(addrs, dtype=np.int64),
        regions=np.array(regions, dtype=np.int32) if saw_region else None,
    )


def open_stream_source(
    path: str,
    fmt: str,
    line_bytes: int = 64,
    batch_records: int = DEFAULT_BATCH_RECORDS,
    poll_interval: float = 0.5,
    idle_timeout: float | None = None,
    stream: TextIO | None = None,
) -> IterableSource:
    """Open a live text trace as an unbounded (one-shot) source.

    Args:
        path: file to follow, or ``"-"`` for stdin (stdin is a pipe:
            EOF ends the stream, no polling).
        fmt: one of ``lackey`` / ``csv`` / ``jsonl`` (live streams
            cannot be sized or content-sniffed, so the format is
            explicit).
        line_bytes: cache-line size to profile at.
        batch_records: records per emitted chunk.
        poll_interval: seconds between EOF re-reads when following a
            file.
        idle_timeout: stop after this long with no new data (``None``:
            follow until interrupted; ``0``: read once to EOF).
        stream: pre-opened text stream (tests); overrides ``path``.
    """
    if fmt not in _PARSERS:
        raise ValueError(
            f"cannot follow format {fmt!r}; followable formats: "
            f"{', '.join(sorted(_PARSERS))}"
        )
    if batch_records <= 0:
        raise ValueError(
            f"batch_records must be positive, got {batch_records}"
        )

    def _gen() -> Iterator[TraceChunk]:
        if stream is not None:
            f = stream
            close = False
        elif path == "-":
            f = sys.stdin
            close = False
        else:
            f = open(Path(path), "r", errors="replace")
            close = True
        # A pipe's EOF is final: never poll stdin.
        timeout = 0.0 if f is sys.stdin else idle_timeout
        try:
            yield from _chunks_from_lines(
                follow_lines(f, poll_interval, timeout), fmt, batch_records
            )
        finally:
            if close:
                f.close()

    return IterableSource(_gen(), line_bytes=line_bytes)


def run_watch(
    source: IterableSource,
    epoch_records: int,
    n_pools: int = 3,
    chunk_bytes: int = 64 * 1024,
    n_chunks: int = 400,
    sample_shift: int = 3,
    out: TextIO | None = None,
) -> int:
    """Classify a live stream, printing pool assignments per epoch.

    Returns a process exit code.  An interrupt (Ctrl-C) finalizes
    cleanly: the partial trailing epoch is sealed and the final pools
    printed before returning.
    """
    from repro.core.whirltool.online import OnlineWhirlTool

    out = out if out is not None else sys.stdout
    tool = OnlineWhirlTool(
        chunk_bytes=chunk_bytes,
        n_chunks=n_chunks,
        sample_shift=sample_shift,
        n_pools=n_pools,
        epoch_records=epoch_records,
    )
    tool.start(source)
    names = dict(source.region_names)
    interrupted = False
    try:
        for chunk in source.chunks(epoch_records):
            for report in tool.push(chunk):
                _print_report(report, names, out)
    except KeyboardInterrupt:
        interrupted = True
    try:
        result = tool.finish()
    except ValueError as exc:
        print(f"ingest watch failed: {exc}", file=sys.stderr)
        return 2
    label = "interrupted" if interrupted else "end of stream"
    print(
        f"{label}: {tool.sealed_epochs} epochs, final pools:", file=out
    )
    for line in _pool_lines(result.assignments(n_pools), names):
        print(f"  {line}", file=out)
    return 0


def _print_report(report, names: dict[int, str], out: TextIO) -> None:
    tags = []
    if report.phase_change:
        tags.append("phase-change")
    if report.reclustered:
        tags.append("reclustered")
    tag = f" [{', '.join(tags)}]" if tags else ""
    print(
        f"epoch {report.epoch}  records<={report.end_record}{tag}",
        file=out,
    )
    if report.assignments is not None:
        for line in _pool_lines(report.assignments, names):
            print(f"  {line}", file=out)


def _pool_lines(
    assignments: dict[int, int], names: dict[int, str]
) -> list[str]:
    pools: dict[int, list[str]] = {}
    for cp, pool in assignments.items():
        pools.setdefault(pool, []).append(names.get(cp, str(cp)))
    return [
        f"pool {pool}: {', '.join(sorted(members))}"
        for pool, members in sorted(pools.items())
    ]
