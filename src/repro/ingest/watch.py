"""Follow a live text trace (growing file or stdin) as an unbounded source.

The ingestion side of Online Whirlpool: :func:`open_stream_source`
turns ``stdin`` or a file that is still being written into an
*unbounded* :class:`~repro.ingest.source.IterableSource` —
``n_records`` is ``None`` and records are parsed as they appear — and
:func:`run_watch` drives :class:`~repro.core.whirltool.online.
OnlineWhirlTool` over it, emitting pool assignments as each epoch
seals (the ``python -m repro ingest watch`` command).

Only the text formats (lackey / csv / jsonl) are followable: they are
what live instrumentation pipes emit, and they can be parsed a line at
a time without a record count up front.  Line parsing matches the
sized readers in :mod:`repro.ingest.formats` exactly, so a capture
classified live and the same capture ingested after the fact see the
same records.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Iterator, TextIO

import numpy as np

from repro import obs
from repro.ingest.formats import _LACKEY_DATA_OPS, _parse_int
from repro.ingest.source import IterableSource, TraceChunk
from repro.retry import call_with_retries

__all__ = ["follow_lines", "open_stream_source", "run_watch"]

#: Records per emitted chunk while following.
DEFAULT_BATCH_RECORDS = 4096


def follow_lines(
    stream: TextIO,
    poll_interval: float = 0.5,
    idle_timeout: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
    path: str | Path | None = None,
) -> Iterator[str]:
    """Yield lines from ``stream``, waiting for more at EOF (``tail -f``).

    Args:
        stream: a text stream positioned where following should start.
        poll_interval: seconds to sleep between EOF re-reads.
        idle_timeout: stop after this many seconds with no new data;
            ``None`` follows forever (until the caller breaks), and
            ``0`` reads exactly what is there now and stops — the mode
            batch tests and one-shot pipes use.
        sleep: injectable for tests.
        path: the on-disk name behind ``stream``, when there is one.
            Enables log-rotation handling at EOF: if the name points at
            a different inode (the writer rotated and recreated the
            file), the new file is opened and followed from its start;
            if the file shrank in place (truncation), following rewinds
            to offset 0.  ``None`` (pipes, stdin, test streams)
            disables the checks.

    Reads are retried through the transient-I/O policy
    (:data:`repro.retry.IO_RETRY`), so a momentary ``OSError`` — an
    NFS blip, a mid-rotation read — costs a bounded re-read, not a
    dead follower.
    """
    from repro.devtools import faults

    watch = Path(path) if path is not None else None
    site_key = str(watch) if watch is not None else ""
    holder = {"stream": stream}
    high_water = 0
    owns_stream = False  # did rotation make us open the current stream?

    def read_line() -> str:
        def _read() -> str:
            faults.maybe_inject("follow-read", key=site_key)
            return holder["stream"].readline()

        return call_with_retries(_read, key=site_key, sleep=sleep)

    def check_rotation() -> bool:
        """At EOF: reopen on rotation, rewind on truncation.

        Returns True when the data source changed (so the caller should
        re-read immediately instead of counting idle time).
        """
        nonlocal high_water, owns_stream
        if watch is None:
            return False
        current = holder["stream"]
        try:
            disk = os.stat(watch)
            here = os.fstat(current.fileno())
        except (OSError, ValueError, AttributeError):
            return False  # rotated away with no successor (yet), or a
            # stream with no real file behind it
        if (disk.st_ino, disk.st_dev) != (here.st_ino, here.st_dev):
            # Rotated: a new file took over the name; follow it from
            # the start.  The old handle (ours or the caller's) points
            # at an orphaned inode nobody will write again.
            try:
                fresh = open(watch, "r", errors="replace")
            except OSError:
                return False  # successor vanished between stat and open
            current.close()
            holder["stream"] = fresh
            owns_stream = True
            obs.event(
                "watch.rotation", path=site_key, high_water=high_water
            )
            obs.counter("watch.rotations")
            high_water = 0
            return True
        if disk.st_size < high_water:
            # Truncated in place: everything re-written from offset 0.
            current.seek(0)
            obs.event(
                "watch.truncation",
                path=site_key,
                high_water=high_water,
                size=disk.st_size,
            )
            obs.counter("watch.truncations")
            high_water = disk.st_size
            return True
        high_water = max(high_water, disk.st_size)
        return False

    idle = 0.0
    try:
        while True:
            line = read_line()
            if line:
                idle = 0.0
                # A final line without a newline may still be mid-write;
                # hold it until the writer finishes it or goes idle.
                if not line.endswith("\n"):
                    buffered = line
                    while idle_timeout is None or idle < idle_timeout:
                        rest = read_line()
                        if rest:
                            buffered += rest
                            if buffered.endswith("\n"):
                                break
                            continue
                        if idle_timeout == 0 or check_rotation():
                            break
                        sleep(poll_interval)
                        idle += poll_interval
                    yield buffered
                    idle = 0.0
                    continue
                yield line
                continue
            if check_rotation():
                continue
            if idle_timeout is not None and idle >= idle_timeout:
                return
            if idle_timeout == 0:
                return
            sleep(poll_interval)
            idle += poll_interval
    finally:
        if owns_stream:
            holder["stream"].close()


# ----------------------------------------------------------------------
# Line parsers (one record per text line, matching the sized readers)
# ----------------------------------------------------------------------


def _parse_lackey(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s or s[0] == "=":
        return None
    op = s[0]
    if op not in _LACKEY_DATA_OPS:
        return None  # instruction fetches and noise are not data records
    addr_text = s[1:].strip().split(",", 1)[0].strip()
    if not addr_text:
        raise ValueError(f"malformed lackey record: {line!r}")
    try:
        return int(addr_text, 16), None
    except ValueError:
        raise ValueError(f"malformed lackey record: {line!r}") from None


def _parse_csv(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s:
        return None
    cols = [c.strip() for c in s.split(",")]
    try:
        addr = _parse_int(cols[0])
    except ValueError:
        if cols[0].lower() in ("addr", "address"):
            return None  # header line
        raise ValueError(f"malformed csv record: {line!r}") from None
    region = _parse_int(cols[1]) if len(cols) > 1 and cols[1] else None
    return addr, region


def _parse_jsonl(line: str) -> tuple[int, int | None] | None:
    s = line.strip()
    if not s:
        return None
    try:
        obj = json.loads(s)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid JSON record: {exc}") from None
    if not isinstance(obj, dict) or "addr" not in obj:
        raise ValueError(
            f"expected an object with an 'addr' field, got {s[:60]!r}"
        )
    addr = obj["addr"]
    region = obj.get("region")
    for key, value in (("addr", addr), ("region", region)):
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int)
        ):
            raise ValueError(
                f"{key!r} must be a JSON integer, got {value!r}"
            )
    return addr, region


_PARSERS: dict[str, Callable[[str], tuple[int, int | None] | None]] = {
    "lackey": _parse_lackey,
    "csv": _parse_csv,
    "jsonl": _parse_jsonl,
}


def _chunks_from_lines(
    lines: Iterator[str],
    fmt: str,
    batch_records: int,
) -> Iterator[TraceChunk]:
    """Batch parsed (addr, region) records into :class:`TraceChunk`\\ s.

    A chunk carries regions when *any* of its records has one (bare
    records in a mixed stream default to region 0, like unattributed
    sources profiled as a single region).
    """
    parse = _PARSERS[fmt]
    addrs: list[int] = []
    regions: list[int] = []
    saw_region = False
    for line in lines:
        rec = parse(line)
        if rec is None:
            continue
        addr, region = rec
        addrs.append(addr)
        regions.append(region if region is not None else 0)
        saw_region = saw_region or region is not None
        if len(addrs) >= batch_records:
            yield _chunk(addrs, regions, saw_region)
            addrs, regions = [], []
    if addrs:
        yield _chunk(addrs, regions, saw_region)


def _chunk(
    addrs: list[int], regions: list[int], saw_region: bool
) -> TraceChunk:
    return TraceChunk(
        addrs=np.array(addrs, dtype=np.int64),
        regions=np.array(regions, dtype=np.int32) if saw_region else None,
    )


def open_stream_source(
    path: str,
    fmt: str,
    line_bytes: int = 64,
    batch_records: int = DEFAULT_BATCH_RECORDS,
    poll_interval: float = 0.5,
    idle_timeout: float | None = None,
    stream: TextIO | None = None,
) -> IterableSource:
    """Open a live text trace as an unbounded (one-shot) source.

    Args:
        path: file to follow, or ``"-"`` for stdin (stdin is a pipe:
            EOF ends the stream, no polling).
        fmt: one of ``lackey`` / ``csv`` / ``jsonl`` (live streams
            cannot be sized or content-sniffed, so the format is
            explicit).
        line_bytes: cache-line size to profile at.
        batch_records: records per emitted chunk.
        poll_interval: seconds between EOF re-reads when following a
            file.
        idle_timeout: stop after this long with no new data (``None``:
            follow until interrupted; ``0``: read once to EOF).
        stream: pre-opened text stream (tests); overrides ``path``.
    """
    if fmt not in _PARSERS:
        raise ValueError(
            f"cannot follow format {fmt!r}; followable formats: "
            f"{', '.join(sorted(_PARSERS))}"
        )
    if batch_records <= 0:
        raise ValueError(
            f"batch_records must be positive, got {batch_records}"
        )

    def _gen() -> Iterator[TraceChunk]:
        watch_path: Path | None = None
        if stream is not None:
            f = stream
            close = False
        elif path == "-":
            f = sys.stdin
            close = False
        else:
            watch_path = Path(path)
            f = open(watch_path, "r", errors="replace")
            close = True
        # A pipe's EOF is final: never poll stdin.  Real files also get
        # rotation/truncation handling (watch_path).
        timeout = 0.0 if f is sys.stdin else idle_timeout
        try:
            yield from _chunks_from_lines(
                follow_lines(f, poll_interval, timeout, path=watch_path),
                fmt,
                batch_records,
            )
        finally:
            if close:
                f.close()

    return IterableSource(_gen(), line_bytes=line_bytes)


def run_watch(
    source: IterableSource,
    epoch_records: int,
    n_pools: int = 3,
    chunk_bytes: int = 64 * 1024,
    n_chunks: int = 400,
    sample_shift: int = 3,
    out: TextIO | None = None,
) -> int:
    """Classify a live stream, printing pool assignments per epoch.

    Returns a process exit code.  An interrupt (Ctrl-C) finalizes
    cleanly: the partial trailing epoch is sealed and the final pools
    printed before returning.
    """
    from repro.core.whirltool.online import OnlineWhirlTool

    out = out if out is not None else sys.stdout
    tool = OnlineWhirlTool(
        chunk_bytes=chunk_bytes,
        n_chunks=n_chunks,
        sample_shift=sample_shift,
        n_pools=n_pools,
        epoch_records=epoch_records,
    )
    tool.start(source)
    names = dict(source.region_names)
    interrupted = False
    try:
        for chunk in source.chunks(epoch_records):
            for report in tool.push(chunk):
                _print_report(report, names, out)
    except KeyboardInterrupt:
        interrupted = True
    try:
        result = tool.finish()
    except ValueError as exc:
        print(f"ingest watch failed: {exc}", file=sys.stderr)
        return 2
    label = "interrupted" if interrupted else "end of stream"
    print(
        f"{label}: {tool.sealed_epochs} epochs, final pools:", file=out
    )
    for line in _pool_lines(result.assignments(n_pools), names):
        print(f"  {line}", file=out)
    return 0


def _print_report(report, names: dict[int, str], out: TextIO) -> None:
    tags = []
    if report.phase_change:
        tags.append("phase-change")
    if report.reclustered:
        tags.append("reclustered")
    tag = f" [{', '.join(tags)}]" if tags else ""
    print(
        f"epoch {report.epoch}  records<={report.end_record}{tag}",
        file=out,
    )
    if report.assignments is not None:
        for line in _pool_lines(report.assignments, names):
            print(f"  {line}", file=out)


def _pool_lines(
    assignments: dict[int, int], names: dict[int, str]
) -> list[str]:
    pools: dict[int, list[str]] = {}
    for cp, pool in assignments.items():
        pools.setdefault(pool, []).append(names.get(cp, str(cp)))
    return [
        f"pool {pool}: {', '.join(sorted(members))}"
        for pool, members in sorted(pools.items())
    ]
