"""Out-of-core stack-distance profiling over :class:`TraceSource` chunks.

:class:`StreamingStackProfiler` produces the same per-region,
per-interval miss curves as the in-memory
:class:`~repro.curves.reuse.StackDistanceProfiler` — bit-identical, for
any chunk size — while holding only one chunk plus per-region
footprint-sized state in memory.  That turns profiling from "load the
trace, then profile" into "profile while reading", which is what makes
multi-gigabyte external captures tractable.

How the chunk decomposition stays exact
---------------------------------------
The stack distance of an access is the number of distinct same-region
lines touched since that line's previous occurrence.  Split a trace at
any chunk boundary and classify each access in the current chunk:

- *locally hot* (previous occurrence inside the chunk): the whole reuse
  window lies inside the chunk, so the existing vectorized engine
  (:func:`~repro.curves.reuse._prev_occurrence` +
  :func:`~repro.curves.reuse._distances_from_prev`) computes it from
  the chunk alone.
- *locally cold, known line* (previous occurrence in an earlier chunk):
  the distinct lines in the window split into three exactly-countable
  groups.  With ``p`` the line's carried last position and ``i`` the
  access position::

      distance = A + B - C
      A = distinct lines touched in this chunk before i   (any line)
      B = carried lines whose last position is > p        (stale markers)
      C = carried lines with last position > p that were   (counted in
          re-touched in this chunk before i                both A and B)

  ``A`` is a per-segment running count of chunk-first-occurrences; ``B``
  is a searchsorted against the sorted carried positions; and because
  the ``C`` queries *are* the chunk-first-occurrences of carried lines,
  ``C`` reduces to an inversion count over their carried positions —
  resolved by the same wavelet dominance counter the in-memory engine
  uses.
- *locally cold, unknown line*: a true cold miss.

The carried state per region is exactly (line -> last sampled position)
as two line-sorted arrays; histograms accumulate per (region, interval)
as integer bucket counts (:func:`~repro.curves.reuse.
distance_bucket_counts`), so finalization shares the in-memory float
pipeline verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import (
    StackDistanceProfiler,
    _distances_from_prev,
    _dominance_counts,
    _prev_occurrence,
    distance_bucket_counts,
    miss_curve_from_bucket_counts,
)
from repro.ingest.source import DEFAULT_CHUNK_RECORDS, TraceSource
from repro.sim.profiling import relabel_regions

__all__ = ["StreamingStackProfiler"]


@dataclass
class _RegionState:
    """Carried cross-chunk state for one region (sampled stream).

    ``lines`` is sorted ascending; ``pos`` holds each line's last
    sampled global position, aligned with ``lines``.
    """

    lines: np.ndarray
    pos: np.ndarray


class StreamingStackProfiler(StackDistanceProfiler):
    """Streams a :class:`TraceSource` through stack-distance profiling.

    Construction matches :class:`~repro.curves.reuse.
    StackDistanceProfiler`; :meth:`profile_source` replaces
    :meth:`~repro.curves.reuse.StackDistanceProfiler.profile` for
    sources too large to materialize.
    """

    def profile_source(
        self,
        source: TraceSource,
        n_intervals: int = 1,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        instructions: float | None = None,
        mapping: dict[int, int] | None = None,
    ) -> dict[int, list[MissCurve]]:
        """Profile a source into per-region, per-interval miss curves.

        Args:
            source: the trace to profile (addresses are divided by this
                profiler's ``line_bytes``; sources without regions are
                profiled as a single region 0).
            n_intervals: number of equal access-index windows.
            chunk_records: records per streamed chunk (the out-of-core
                memory bound; any value yields identical output).
            instructions: total instruction count; defaults to the
                source's own.  Required when the source has none.
            mapping: optional region id -> VC id relabel applied before
                profiling (ids missing from the mapping fall into VC 0,
                matching :func:`repro.sim.profiling.profile_vcs`).

        Returns:
            Mapping ``region id -> [MissCurve, ...]``, bit-identical to
            the in-memory engine over the materialized trace.
        """
        if instructions is None:
            instructions = source.instructions
        if instructions is None or instructions <= 0:
            raise ValueError(
                "source carries no instruction count; pass instructions="
            )
        n_total = source.n_records
        bounds = np.linspace(0, n_total, n_intervals + 1).astype(np.int64)
        scale = float(1 << self.sample_shift)

        state: dict[int, _RegionState] = {}
        acc_counts: dict[int, np.ndarray] = {}
        hists: dict[int, np.ndarray] = {}
        colds: dict[int, np.ndarray] = {}
        sampled: dict[int, np.ndarray] = {}

        offset = 0
        for chunk in source.chunks(chunk_records):
            n = len(chunk)
            if n == 0:
                continue
            if offset + n > n_total:
                raise ValueError(
                    f"source yielded more than its declared "
                    f"{n_total} records"
                )
            lines = chunk.addrs // self.line_bytes
            if chunk.regions is None:
                regions = np.zeros(n, dtype=np.int32)
            else:
                regions = chunk.regions
            if mapping is not None:
                regions = relabel_regions(regions, mapping)
            self._count_accesses(
                regions, offset, bounds, n_intervals, acc_counts
            )
            self._process_chunk(
                lines,
                regions,
                offset,
                bounds,
                n_intervals,
                scale,
                state,
                hists,
                colds,
                sampled,
            )
            offset += n
        if offset != n_total:
            raise ValueError(
                f"source yielded {offset} records but declared {n_total}"
            )
        return self._finalize(
            acc_counts, hists, colds, sampled, instructions, n_intervals, scale
        )

    # ------------------------------------------------------------------
    # Per-chunk stages
    # ------------------------------------------------------------------
    @staticmethod
    def _count_accesses(
        regions: np.ndarray,
        offset: int,
        bounds: np.ndarray,
        n_intervals: int,
        acc_counts: dict[int, np.ndarray],
    ) -> None:
        """Accumulate unsampled per-(region, interval) access counts."""
        n = len(regions)
        t0 = int(np.searchsorted(bounds, offset, side="right")) - 1
        t1 = int(np.searchsorted(bounds, offset + n - 1, side="right")) - 1
        for t in range(t0, t1 + 1):
            lo = max(0, int(bounds[t]) - offset)
            hi = min(n, int(bounds[t + 1]) - offset)
            ids, counts = np.unique(regions[lo:hi], return_counts=True)
            for rid, c in zip(ids.tolist(), counts.tolist()):
                row = acc_counts.get(rid)
                if row is None:
                    row = acc_counts[rid] = np.zeros(n_intervals, dtype=np.int64)
                row[t] += c

    def _process_chunk(
        self,
        lines: np.ndarray,
        regions: np.ndarray,
        offset: int,
        bounds: np.ndarray,
        n_intervals: int,
        scale: float,
        state: dict[int, _RegionState],
        hists: dict[int, np.ndarray],
        colds: dict[int, np.ndarray],
        sampled: dict[int, np.ndarray],
    ) -> None:
        keep = self._sample_mask(lines)
        kept = np.nonzero(keep)[0]
        if kept.size == 0:
            return
        # Group sampled accesses by region, preserving stream order.
        gorder = np.argsort(regions[kept], kind="stable")
        g_src = kept[gorder]
        g_lines = np.ascontiguousarray(lines[g_src])
        g_regions = regions[g_src]
        g_pos = offset + g_src  # global positions, ascending per segment
        rids = np.unique(g_regions)
        seg_starts = np.searchsorted(g_regions, rids, side="left")
        seg_ends = np.searchsorted(g_regions, rids, side="right")
        base = np.repeat(seg_starts, seg_ends - seg_starts)

        # Locally-hot distances from the chunk alone.
        prev = _prev_occurrence(g_lines, g_regions)
        dist = _distances_from_prev(prev, base)
        cold_local = prev < 0
        # A: distinct lines touched earlier in the same chunk segment.
        excl = np.cumsum(cold_local) - cold_local
        distinct_before = excl - excl[base]

        for r, rid in enumerate(rids.tolist()):
            s, e = int(seg_starts[r]), int(seg_ends[r])
            st = state.get(rid)
            seg_cold = s + np.nonzero(cold_local[s:e])[0]
            if st is not None and seg_cold.size:
                self._resolve_carried(
                    st, g_lines, seg_cold, distinct_before, dist
                )
            self._update_state(
                state, rid, st, g_lines[s:e], g_pos[s:e]
            )
            self._accumulate(
                rid,
                dist[s:e],
                g_pos[s:e],
                bounds,
                n_intervals,
                scale,
                hists,
                colds,
                sampled,
            )

    def _resolve_carried(
        self,
        st: _RegionState,
        g_lines: np.ndarray,
        seg_cold: np.ndarray,
        distinct_before: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        """Fill distances for chunk-cold accesses whose line is carried."""
        q = g_lines[seg_cold]
        loc = np.searchsorted(st.lines, q)
        inb = loc < len(st.lines)
        hit = np.zeros(len(q), dtype=bool)
        hit[inb] = st.lines[loc[inb]] == q[inb]
        if not hit.any():
            return
        hit_idx = seg_cold[hit]
        p = st.pos[loc[hit]]  # carried position per query, in stream order
        a = distinct_before[hit_idx]
        pos_sorted = np.sort(st.pos)
        b = len(pos_sorted) - np.searchsorted(pos_sorted, p, side="right")
        # C: inversions among the carried positions of re-touched lines —
        # carried lines with a later marker that were re-touched earlier.
        counts = _dominance_counts(p, np.argsort(p, kind="stable"))
        c = np.arange(len(p), dtype=np.int64) - counts
        dist[hit_idx] = a + b - c

    @staticmethod
    def _update_state(
        state: dict[int, _RegionState],
        rid: int,
        st: _RegionState | None,
        seg_lines: np.ndarray,
        seg_pos: np.ndarray,
    ) -> None:
        """Move touched lines' markers to their last position this chunk."""
        o = np.argsort(seg_lines, kind="stable")
        sl = seg_lines[o]
        last = np.ones(len(sl), dtype=bool)
        if len(sl) > 1:
            last[:-1] = sl[1:] != sl[:-1]
        new_lines = sl[last]
        new_pos = seg_pos[o][last]
        if st is None:
            state[rid] = _RegionState(lines=new_lines, pos=new_pos)
            return
        loc = np.searchsorted(st.lines, new_lines)
        inb = loc < len(st.lines)
        dup = np.zeros(len(new_lines), dtype=bool)
        dup[inb] = st.lines[loc[inb]] == new_lines[inb]
        keep_old = np.ones(len(st.lines), dtype=bool)
        keep_old[loc[dup]] = False
        # Linear merge of two sorted distinct-line arrays (np.insert
        # shifts once for all insertion points): O(F + chunk) per chunk,
        # not a footprint-sized argsort.
        old_lines = st.lines[keep_old]
        idx = np.searchsorted(old_lines, new_lines)
        state[rid] = _RegionState(
            lines=np.insert(old_lines, idx, new_lines),
            pos=np.insert(st.pos[keep_old], idx, new_pos),
        )

    def _accumulate(
        self,
        rid: int,
        seg_dist: np.ndarray,
        seg_pos: np.ndarray,
        bounds: np.ndarray,
        n_intervals: int,
        scale: float,
        hists: dict[int, np.ndarray],
        colds: dict[int, np.ndarray],
        sampled: dict[int, np.ndarray],
    ) -> None:
        """Add one segment's distances into the interval accumulators."""
        hist = hists.get(rid)
        if hist is None:
            hist = hists[rid] = np.zeros(
                (n_intervals, self.n_chunks + 2), dtype=np.int64
            )
            colds[rid] = np.zeros(n_intervals, dtype=np.int64)
            sampled[rid] = np.zeros(n_intervals, dtype=np.int64)
        # Positions ascend within a segment, so each interval is a slice.
        w = np.searchsorted(seg_pos, bounds, side="left")
        for t in range(n_intervals):
            lo, hi = int(w[t]), int(w[t + 1])
            if lo == hi:
                continue
            h, n_cold, n_acc = distance_bucket_counts(
                seg_dist[lo:hi],
                self.chunk_bytes,
                self.n_chunks,
                self.line_bytes,
                distance_scale=scale,
            )
            hist[t] += h
            colds[rid][t] += n_cold
            sampled[rid][t] += n_acc

    # ------------------------------------------------------------------
    # Finalization (shared float pipeline with the in-memory engine)
    # ------------------------------------------------------------------
    def _finalize(
        self,
        acc_counts: dict[int, np.ndarray],
        hists: dict[int, np.ndarray],
        colds: dict[int, np.ndarray],
        sampled: dict[int, np.ndarray],
        instructions: float,
        n_intervals: int,
        scale: float,
    ) -> dict[int, list[MissCurve]]:
        instr_per_interval = instructions / n_intervals
        out: dict[int, list[MissCurve]] = {}
        for rid in sorted(acc_counts):
            curves: list[MissCurve] = []
            for t in range(n_intervals):
                n_acc = int(acc_counts[rid][t])
                n_samp = int(sampled[rid][t]) if rid in sampled else 0
                if n_samp > 0:
                    curve = miss_curve_from_bucket_counts(
                        hists[rid][t],
                        int(colds[rid][t]),
                        n_samp,
                        self.chunk_bytes,
                        self.n_chunks,
                        instr_per_interval,
                        scale=scale,
                    )
                    # Same unsampled-access rescale as the in-memory
                    # engine, in the same operation order.
                    ratio = n_acc / curve.accesses
                    curve = MissCurve(
                        misses=curve.misses * ratio,
                        chunk_bytes=curve.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=curve.instructions,
                    )
                else:
                    curve = MissCurve(
                        misses=np.full(self.n_chunks + 1, float(n_acc)),
                        chunk_bytes=self.chunk_bytes,
                        accesses=float(n_acc),
                        instructions=instr_per_interval,
                    )
                curves.append(curve)
            out[int(rid)] = curves
        return out
