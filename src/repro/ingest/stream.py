"""Out-of-core stack-distance profiling over :class:`TraceSource` chunks.

:class:`StreamingStackProfiler` produces the same per-region,
per-interval miss curves as the in-memory
:class:`~repro.curves.reuse.StackDistanceProfiler` — bit-identical, for
any chunk size — while holding only one chunk plus per-region
footprint-sized state in memory.  That turns profiling from "load the
trace, then profile" into "profile while reading", which is what makes
multi-gigabyte external captures tractable.

The carried state lives in a :class:`StreamingProfile` handle, so a
profile does not have to be a single closed loop over a sized source:
:meth:`StreamingStackProfiler.begin` opens a handle, chunks are pushed
as they arrive, and — unlike :meth:`profile_source`'s fixed
``linspace`` windows — the handle's interval bounds are *open-ended*:
new record-count intervals (epochs) can be appended while the stream
runs, which is what the online classifier
(:class:`repro.core.whirltool.online.OnlineWhirlTool`) builds on for
unbounded sources whose ``n_records`` is ``None``.

How the chunk decomposition stays exact
---------------------------------------
The stack distance of an access is the number of distinct same-region
lines touched since that line's previous occurrence.  Split a trace at
any chunk boundary and classify each access in the current chunk:

- *locally hot* (previous occurrence inside the chunk): the whole reuse
  window lies inside the chunk, so the existing vectorized engine
  (:func:`~repro.curves.reuse._prev_occurrence` +
  :func:`~repro.curves.reuse._distances_from_prev`) computes it from
  the chunk alone.
- *locally cold, known line* (previous occurrence in an earlier chunk):
  the distinct lines in the window split into three exactly-countable
  groups.  With ``p`` the line's carried last position and ``i`` the
  access position::

      distance = A + B - C
      A = distinct lines touched in this chunk before i   (any line)
      B = carried lines whose last position is > p        (stale markers)
      C = carried lines with last position > p that were   (counted in
          re-touched in this chunk before i                both A and B)

  ``A`` is a per-segment running count of chunk-first-occurrences; ``B``
  is a searchsorted against the sorted carried positions; and because
  the ``C`` queries *are* the chunk-first-occurrences of carried lines,
  ``C`` reduces to an inversion count over their carried positions —
  resolved by the same wavelet dominance counter the in-memory engine
  uses.
- *locally cold, unknown line*: a true cold miss.

The carried state per region is exactly (line -> last sampled position)
as two line-sorted arrays; histograms accumulate per (region, interval)
in an :class:`~repro.curves.reuse.IntervalBucketAccumulator` (integer
bucket counts), so finalization shares the in-memory float pipeline
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import (
    IntervalBucketAccumulator,
    StackDistanceProfiler,
    _distances_from_prev,
    _dominance_counts,
    _prev_occurrence,
)
from repro.ingest.source import DEFAULT_CHUNK_RECORDS, TraceChunk, TraceSource
from repro.sim.profiling import relabel_regions

__all__ = ["StreamingProfile", "StreamingStackProfiler"]


@dataclass
class _RegionState:
    """Carried cross-chunk state for one region (sampled stream).

    ``lines`` is sorted ascending; ``pos`` holds each line's last
    sampled global position, aligned with ``lines``.
    """

    lines: np.ndarray
    pos: np.ndarray


class StreamingProfile:
    """An in-progress out-of-core profile: the carried state, exposed.

    Holds everything :meth:`StreamingStackProfiler.profile_source`
    used to keep in loop-local dicts — per-region (line -> last
    position) markers plus per-(region, interval) bucket-count
    accumulators — behind an incremental push/seal/finalize API, so a
    profile can outlive any single pass over a source:

    - :meth:`push_chunk` consumes one :class:`TraceChunk` (records must
      lie inside the currently open interval bounds);
    - :meth:`open_interval` appends a new record-count interval while
      the stream runs (the open-ended epoch model for unbounded
      sources);
    - :meth:`interval_curve` finalizes a single sealed (region,
      interval) cell, and :meth:`finalize` the whole grid.

    Bucket counts are integers, so every finalization is bit-identical
    to the one-shot engines no matter how the stream was chunked.
    """

    def __init__(
        self, profiler: StackDistanceProfiler, bounds: np.ndarray
    ) -> None:
        bounds = np.ascontiguousarray(bounds, dtype=np.int64)
        if len(bounds) < 1 or bounds[0] != 0:
            raise ValueError("bounds must start at record 0")
        if len(bounds) > 1 and bool((np.diff(bounds) < 0).any()):
            raise ValueError("bounds must be non-decreasing")
        self._p = profiler
        self.bounds = bounds
        self.offset = 0
        self._state: dict[int, _RegionState] = {}
        self._acc: dict[int, IntervalBucketAccumulator] = {}
        self._scale = float(1 << profiler.sample_shift)

    @property
    def n_intervals(self) -> int:
        """Intervals currently open (sealed or still filling)."""
        return len(self.bounds) - 1

    def region_ids(self) -> list[int]:
        """Region ids observed so far, sorted."""
        return sorted(self._acc)

    def open_interval(self, end: int) -> None:
        """Append a new interval ending at record index ``end``."""
        if end <= int(self.bounds[-1]):
            raise ValueError(
                f"interval end {end} does not extend the last bound "
                f"{int(self.bounds[-1])}"
            )
        self.bounds = np.append(self.bounds, np.int64(end))

    # ------------------------------------------------------------------
    # Per-chunk stages
    # ------------------------------------------------------------------
    def push_chunk(
        self, chunk: TraceChunk, mapping: dict[int, int] | None = None
    ) -> None:
        """Consume one chunk of records (in stream order)."""
        n = len(chunk)
        if n == 0:
            return
        if self.offset + n > int(self.bounds[-1]):
            raise ValueError(
                f"chunk extends to record {self.offset + n} but the last "
                f"open interval ends at {int(self.bounds[-1])}; call "
                "open_interval first"
            )
        lines = chunk.addrs // self._p.line_bytes
        if chunk.regions is None:
            regions = np.zeros(n, dtype=np.int32)
        else:
            regions = chunk.regions
        if mapping is not None:
            regions = relabel_regions(regions, mapping)
        self._count_accesses(regions)
        self._process_chunk(lines, regions)
        self.offset += n

    def _accumulator(self, rid: int) -> IntervalBucketAccumulator:
        acc = self._acc.get(rid)
        if acc is None:
            acc = self._acc[rid] = IntervalBucketAccumulator(
                self._p.n_chunks
            )
        acc.ensure_intervals(self.n_intervals)
        return acc

    def _count_accesses(self, regions: np.ndarray) -> None:
        """Accumulate unsampled per-(region, interval) access counts.

        Interval lookup is a two-sided ``searchsorted`` against the
        bounds: with right-side search, a record index sitting exactly
        on a (possibly duplicated) bound lands in the *last* interval
        starting there — the same interval the in-memory engine's
        ``np.repeat(arange, diff(bounds))`` assigns, because empty
        intervals (duplicate bounds) own no records.
        """
        n = len(regions)
        offset = self.offset
        bounds = self.bounds
        t0 = int(np.searchsorted(bounds, offset, side="right")) - 1
        t1 = int(np.searchsorted(bounds, offset + n - 1, side="right")) - 1
        for t in range(t0, t1 + 1):
            lo = max(0, int(bounds[t]) - offset)
            hi = min(n, int(bounds[t + 1]) - offset)
            if lo >= hi:
                continue  # empty interval straddled by this chunk
            ids, counts = np.unique(regions[lo:hi], return_counts=True)
            for rid, c in zip(ids.tolist(), counts.tolist()):
                self._accumulator(rid).add_accesses(t, c)

    def _process_chunk(self, lines: np.ndarray, regions: np.ndarray) -> None:
        keep = self._p._sample_mask(lines)
        kept = np.nonzero(keep)[0]
        if kept.size == 0:
            return
        # Group sampled accesses by region, preserving stream order.
        gorder = np.argsort(regions[kept], kind="stable")
        g_src = kept[gorder]
        g_lines = np.ascontiguousarray(lines[g_src])
        g_regions = regions[g_src]
        g_pos = self.offset + g_src  # global positions, ascending per segment
        rids = np.unique(g_regions)
        seg_starts = np.searchsorted(g_regions, rids, side="left")
        seg_ends = np.searchsorted(g_regions, rids, side="right")
        base = np.repeat(seg_starts, seg_ends - seg_starts)

        # Locally-hot distances from the chunk alone.
        prev = _prev_occurrence(g_lines, g_regions)
        dist = _distances_from_prev(prev, base)
        cold_local = prev < 0
        # A: distinct lines touched earlier in the same chunk segment.
        excl = np.cumsum(cold_local) - cold_local
        distinct_before = excl - excl[base]

        for r, rid in enumerate(rids.tolist()):
            s, e = int(seg_starts[r]), int(seg_ends[r])
            st = self._state.get(rid)
            seg_cold = s + np.nonzero(cold_local[s:e])[0]
            if st is not None and seg_cold.size:
                self._resolve_carried(
                    st, g_lines, seg_cold, distinct_before, dist
                )
            self._update_state(rid, st, g_lines[s:e], g_pos[s:e])
            self._accumulate(rid, dist[s:e], g_pos[s:e])

    def _resolve_carried(
        self,
        st: _RegionState,
        g_lines: np.ndarray,
        seg_cold: np.ndarray,
        distinct_before: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        """Fill distances for chunk-cold accesses whose line is carried."""
        q = g_lines[seg_cold]
        loc = np.searchsorted(st.lines, q)
        inb = loc < len(st.lines)
        hit = np.zeros(len(q), dtype=bool)
        hit[inb] = st.lines[loc[inb]] == q[inb]
        if not hit.any():
            return
        hit_idx = seg_cold[hit]
        p = st.pos[loc[hit]]  # carried position per query, in stream order
        a = distinct_before[hit_idx]
        pos_sorted = np.sort(st.pos)
        b = len(pos_sorted) - np.searchsorted(pos_sorted, p, side="right")
        # C: inversions among the carried positions of re-touched lines —
        # carried lines with a later marker that were re-touched earlier.
        counts = _dominance_counts(p, np.argsort(p, kind="stable"))
        c = np.arange(len(p), dtype=np.int64) - counts
        dist[hit_idx] = a + b - c

    def _update_state(
        self,
        rid: int,
        st: _RegionState | None,
        seg_lines: np.ndarray,
        seg_pos: np.ndarray,
    ) -> None:
        """Move touched lines' markers to their last position this chunk."""
        o = np.argsort(seg_lines, kind="stable")
        sl = seg_lines[o]
        last = np.ones(len(sl), dtype=bool)
        if len(sl) > 1:
            last[:-1] = sl[1:] != sl[:-1]
        new_lines = sl[last]
        new_pos = seg_pos[o][last]
        if st is None:
            self._state[rid] = _RegionState(lines=new_lines, pos=new_pos)
            return
        loc = np.searchsorted(st.lines, new_lines)
        inb = loc < len(st.lines)
        dup = np.zeros(len(new_lines), dtype=bool)
        dup[inb] = st.lines[loc[inb]] == new_lines[inb]
        keep_old = np.ones(len(st.lines), dtype=bool)
        keep_old[loc[dup]] = False
        # Linear merge of two sorted distinct-line arrays (np.insert
        # shifts once for all insertion points): O(F + chunk) per chunk,
        # not a footprint-sized argsort.
        old_lines = st.lines[keep_old]
        idx = np.searchsorted(old_lines, new_lines)
        self._state[rid] = _RegionState(
            lines=np.insert(old_lines, idx, new_lines),
            pos=np.insert(st.pos[keep_old], idx, new_pos),
        )

    def _accumulate(
        self, rid: int, seg_dist: np.ndarray, seg_pos: np.ndarray
    ) -> None:
        """Add one segment's distances into the interval accumulators."""
        acc = self._accumulator(rid)
        # Positions ascend within a segment, so each interval is a slice.
        w = np.searchsorted(seg_pos, self.bounds, side="left")
        for t in np.nonzero(np.diff(w) > 0)[0].tolist():
            acc.add_distances(
                t,
                seg_dist[w[t] : w[t + 1]],
                self._p.chunk_bytes,
                self._p.line_bytes,
                distance_scale=self._scale,
            )

    # ------------------------------------------------------------------
    # Finalization (shared float pipeline with the in-memory engine)
    # ------------------------------------------------------------------
    def interval_curve(
        self, rid: int, interval: int, instructions: float
    ) -> MissCurve:
        """Finalize one (region, interval) cell's accumulated counts.

        ``instructions`` is the instruction count of *this* interval
        (epochs carry their own; fixed grids split the total evenly).
        Safe to call on sealed intervals while later ones still fill.
        """
        acc = self._acc[rid]
        acc.ensure_intervals(self.n_intervals)
        return acc.interval_curve(
            interval, self._p.chunk_bytes, instructions, scale=self._scale
        )

    def finalize(self, instructions: float) -> dict[int, list[MissCurve]]:
        """Finalize every (region, interval) cell into miss curves.

        ``instructions`` is the whole-stream total, split evenly across
        intervals exactly like the in-memory engine.
        """
        instr_per_interval = instructions / self.n_intervals
        return {
            int(rid): [
                self.interval_curve(rid, t, instr_per_interval)
                for t in range(self.n_intervals)
            ]
            for rid in self.region_ids()
        }


class StreamingStackProfiler(StackDistanceProfiler):
    """Streams a :class:`TraceSource` through stack-distance profiling.

    Construction matches :class:`~repro.curves.reuse.
    StackDistanceProfiler`; :meth:`profile_source` replaces
    :meth:`~repro.curves.reuse.StackDistanceProfiler.profile` for
    sources too large to materialize, and :meth:`begin` opens an
    incremental :class:`StreamingProfile` for callers that feed chunks
    themselves (unbounded sources, online epoch profiling).
    """

    def begin(
        self, bounds: np.ndarray | list[int] | tuple[int, ...] = (0,)
    ) -> StreamingProfile:
        """Open an incremental profile with the given interval bounds.

        ``bounds`` may be just ``[0]`` (no intervals yet): the online
        path appends record-count epochs with
        :meth:`StreamingProfile.open_interval` as data arrives.
        """
        return StreamingProfile(self, np.asarray(bounds))

    def profile_source(
        self,
        source: TraceSource,
        n_intervals: int = 1,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        instructions: float | None = None,
        mapping: dict[int, int] | None = None,
    ) -> dict[int, list[MissCurve]]:
        """Profile a source into per-region, per-interval miss curves.

        Args:
            source: the trace to profile (addresses are divided by this
                profiler's ``line_bytes``; sources without regions are
                profiled as a single region 0).  Must be *sized*
                (``n_records`` not ``None``): equal-width interval
                windows need the total up front.  Unbounded sources
                stream through :class:`repro.core.whirltool.online.
                OnlineWhirlTool` (or :meth:`begin`) instead.
            n_intervals: number of equal access-index windows.
            chunk_records: records per streamed chunk (the out-of-core
                memory bound; any value yields identical output).
            instructions: total instruction count; defaults to the
                source's own.  Required when the source has none.
            mapping: optional region id -> VC id relabel applied before
                profiling (ids missing from the mapping fall into VC 0,
                matching :func:`repro.sim.profiling.profile_vcs`).

        Returns:
            Mapping ``region id -> [MissCurve, ...]``, bit-identical to
            the in-memory engine over the materialized trace.
        """
        if instructions is None:
            instructions = source.instructions
        if instructions is None or instructions <= 0:
            raise ValueError(
                "source carries no instruction count; pass instructions="
            )
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        n_total = source.n_records
        if n_total is None:
            raise ValueError(
                "source is unbounded (n_records is None); equal-width "
                "intervals need a sized source — use begin() with "
                "open-ended epochs, or OnlineWhirlTool"
            )
        if n_total <= 0:
            # Same diagnosis as the ingest materialize path: a
            # degenerate linspace over zero records would silently
            # return empty curves.
            raise ValueError("source yielded no records")
        bounds = np.linspace(0, n_total, n_intervals + 1).astype(np.int64)
        prof = self.begin(bounds)
        for chunk in source.chunks(chunk_records):
            n = len(chunk)
            if n == 0:
                continue
            if prof.offset + n > n_total:
                raise ValueError(
                    f"source yielded more than its declared "
                    f"{n_total} records"
                )
            prof.push_chunk(chunk, mapping=mapping)
        if prof.offset != n_total:
            raise ValueError(
                f"source yielded {prof.offset} records but declared {n_total}"
            )
        return prof.finalize(instructions)
