"""The ingestion pipeline: source -> attribution -> native archive.

:func:`convert_to_rtrace` is the workhorse behind ``python -m repro
ingest convert``: it streams any :class:`TraceSource` through optional
region attribution and optional private-cache dedup into an ``.rtrace``
archive, in bounded memory.  :func:`materialize` produces an in-memory
:class:`~repro.workloads.trace.Trace` the simulator can run directly,
and :func:`load_workload` wraps a registered archive as a first-class
:class:`~repro.workloads.trace.Workload`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ingest.attribute import FALLBACK_NAME, AttributionTable
from repro.ingest.formats import RTraceWriter, open_trace_source
from repro.ingest.source import DEFAULT_CHUNK_RECORDS, TraceSource
from repro.workloads.trace import Trace, Workload

__all__ = [
    "AttributedSource",
    "convert_to_rtrace",
    "load_workload",
    "materialize",
    "resolve_instructions",
]


class AttributedSource:
    """A source wrapper that attributes regions on the fly.

    Chunks that already carry regions pass through unchanged; bare
    chunks get ``table.attribute`` applied.  Lets every consumer — the
    exporters, the streaming profiler, conversion — treat attribution
    as just another source.
    """

    def __init__(self, source: TraceSource, table: AttributionTable) -> None:
        self._source = source
        self._table = table
        self.n_records = source.n_records
        self.line_bytes = source.line_bytes
        self.instructions = source.instructions
        self.region_names = dict(source.region_names)
        self.region_names.update(table.region_names)

    def chunks(self, max_records: int = DEFAULT_CHUNK_RECORDS):
        for chunk in self._source.chunks(max_records):
            if chunk.regions is None:
                chunk.regions = self._table.attribute(chunk.addrs)
            yield chunk


def resolve_instructions(
    source: TraceSource,
    n_records: int,
    instructions: float | None = None,
    apki: float | None = None,
) -> float | None:
    """Pick the instruction count for an ingested trace.

    Priority: explicit ``instructions``, then ``apki`` (derived from the
    record count, like :meth:`TraceBuilder.finalize`), then whatever the
    capture itself carries.
    """
    if instructions is not None and apki is not None:
        raise ValueError("provide at most one of instructions / apki")
    if instructions is not None:
        if instructions <= 0:
            raise ValueError(f"instructions must be positive, got {instructions}")
        return float(instructions)
    if apki is not None:
        if apki <= 0:
            raise ValueError(f"apki must be positive, got {apki}")
        return n_records * 1000.0 / apki
    return source.instructions


class _Dedup:
    """Streaming consecutive-same-line dedup, per region.

    Mirrors :meth:`TraceBuilder.finalize`'s private-cache model — a
    region's immediately repeated lines are served by the private
    levels — but carries each region's last-seen line across chunk
    boundaries so the result is independent of chunking.
    """

    def __init__(self) -> None:
        self._last: dict[int, int] = {}

    def apply(
        self, lines: np.ndarray, regions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(lines)
        if n == 0:
            return lines, regions
        order = np.argsort(regions, kind="stable")
        g_lines = lines[order]
        g_regions = regions[order]
        repeat = np.zeros(n, dtype=bool)
        if n > 1:
            same = (g_lines[1:] == g_lines[:-1]) & (
                g_regions[1:] == g_regions[:-1]
            )
            repeat[order[1:]] = same
        # Chunk boundary: each region's first access this chunk repeats
        # if it matches the region's last line from the previous chunk.
        firsts = np.ones(n, dtype=bool)
        if n > 1:
            firsts[1:] = g_regions[1:] != g_regions[:-1]
        first_idx = np.nonzero(firsts)[0]
        run_ends = np.append(first_idx[1:], n) - 1
        for f, e in zip(first_idx.tolist(), run_ends.tolist()):
            rid = int(g_regions[f])
            if self._last.get(rid) == int(g_lines[f]):
                repeat[order[f]] = True
            self._last[rid] = int(g_lines[e])
        keep = ~repeat
        return lines[keep], regions[keep]


def _chunk_regions(
    chunk, table: AttributionTable | None
) -> np.ndarray:
    """Region ids for one chunk: carried, attributed, or fallback 0."""
    if chunk.regions is not None:
        return chunk.regions
    if table is not None:
        return table.attribute(chunk.addrs)
    return np.zeros(len(chunk), dtype=np.int32)


def _merged_names(
    source: TraceSource, table: AttributionTable | None, has_regions: bool
) -> dict[int, str]:
    names = dict(source.region_names)
    if table is not None:
        names.update(table.region_names)
    elif not has_regions and not names:
        names[0] = FALLBACK_NAME
    return names


def convert_to_rtrace(
    source: TraceSource,
    dst: str | Path,
    table: AttributionTable | None = None,
    line_bytes: int | None = None,
    instructions: float | None = None,
    apki: float | None = None,
    dedup: bool = False,
    max_records: int = DEFAULT_CHUNK_RECORDS,
    compression: int | None = None,
) -> dict:
    """Stream a source into a native ``.rtrace`` archive.

    Args:
        source: any trace source.
        dst: destination ``.rtrace`` path.
        table: optional attribution table for sources without regions
            (sources that already carry regions keep them).
        line_bytes: cache-line size; defaults to the source's.
        instructions / apki: instruction count override (see
            :func:`resolve_instructions`).
        dedup: collapse consecutive same-line accesses per region, like
            :meth:`TraceBuilder.finalize` (private caches filter them).
        max_records: streaming chunk size.
        compression: zip member compression (default deflate;
            ``zipfile.ZIP_STORED`` makes the archive memory-mappable —
            the content fingerprint is the same either way).

    Returns:
        The archive header that was written.
    """
    line_bytes = line_bytes if line_bytes is not None else source.line_bytes
    if compression is None:
        writer = RTraceWriter(dst, line_bytes=line_bytes)
    else:
        writer = RTraceWriter(
            dst, line_bytes=line_bytes, compression=compression
        )
    deduper = _Dedup() if dedup else None
    has_regions = False
    try:
        for chunk in source.chunks(max_records):
            regions = _chunk_regions(chunk, table)
            has_regions = has_regions or chunk.regions is not None
            lines = chunk.addrs // line_bytes
            if deduper is not None:
                lines, regions = deduper.apply(lines, regions)
            writer.append(lines, regions)
    except BaseException:
        writer.close()
        Path(dst).unlink(missing_ok=True)
        raise
    return writer.close(
        instructions=resolve_instructions(
            source, writer.n_records, instructions, apki
        ),
        region_names=_merged_names(source, table, has_regions),
    )


def materialize(
    source: TraceSource,
    table: AttributionTable | None = None,
    line_bytes: int | None = None,
    instructions: float | None = None,
    apki: float | None = None,
    max_records: int = DEFAULT_CHUNK_RECORDS,
) -> Trace:
    """Read a whole source into an in-memory :class:`Trace`.

    The small-trace converse of the streaming path: attribution and
    line conversion behave exactly like :func:`convert_to_rtrace`
    without dedup.
    """
    line_bytes = line_bytes if line_bytes is not None else source.line_bytes
    line_chunks: list[np.ndarray] = []
    region_chunks: list[np.ndarray] = []
    has_regions = False
    if (
        table is None
        and line_bytes == source.line_bytes
        and hasattr(source, "line_chunks")
    ):
        # Native archives store line ids directly: read them as-is
        # (zero-copy views when the archive is mappable) instead of the
        # lines * bytes -> addrs // bytes round trip, which is the
        # identity on integers but forces two array copies.
        has_regions = True
        for lines, regions in source.line_chunks(max_records):
            line_chunks.append(lines)
            region_chunks.append(regions)
    else:
        for chunk in source.chunks(max_records):
            regions = _chunk_regions(chunk, table)
            has_regions = has_regions or chunk.regions is not None
            line_chunks.append(chunk.addrs // line_bytes)
            region_chunks.append(regions)
    # An empty source is diagnosed first: "no instruction count" on a
    # zero-record capture pointed users at the wrong flag.
    if not line_chunks or not sum(len(c) for c in line_chunks):
        raise ValueError("source yielded no records")
    n_records = sum(len(c) for c in line_chunks)
    instr = resolve_instructions(source, n_records, instructions, apki)
    if instr is None:
        raise ValueError(
            "source carries no instruction count; pass instructions= or "
            "apki= (or convert with --instructions / --apki)"
        )
    return Trace(
        lines=(
            line_chunks[0]
            if len(line_chunks) == 1
            else np.concatenate(line_chunks)
        ),
        regions=(
            region_chunks[0]
            if len(region_chunks) == 1
            else np.concatenate(region_chunks)
        ),
        instructions=instr,
        line_bytes=line_bytes,
        region_names=_merged_names(source, table, has_regions),
    )


def load_workload(path: str | Path, name: str | None = None) -> Workload:
    """Load an ingested trace file as a first-class :class:`Workload`.

    Intended for registered ``.rtrace`` archives (which carry their own
    instruction counts and region names); any format works as long as
    the file records instructions.
    """
    path = Path(path)
    source = open_trace_source(path)
    trace = materialize(source)
    return Workload(name=name if name is not None else path.stem, trace=trace)
