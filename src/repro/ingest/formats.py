"""Pluggable trace formats: readers, writers, and the format registry.

Four interchange formats plus the native archive:

========  ==========================  ======================================
name      extensions                  what it is
========  ==========================  ======================================
lackey    .lackey .vgtrace            Valgrind ``--tool=lackey
                                      --trace-mem=yes`` text output
mtrace    .mtrace                     DynamoRIO-memtrace-style packed
                                      little-endian binary records
csv       .csv                        ``addr[,region]`` rows, decimal or
                                      0x-hex, optional header line
jsonl     .jsonl .ndjson              one ``{"addr": ..., "region": ...}``
                                      object per line
rtrace    .rtrace                     native chunked-npz archive (header
                                      with line size, region names and a
                                      content fingerprint)
========  ==========================  ======================================

Readers are :class:`~repro.ingest.source.TraceSource` classes registered
in :data:`FORMATS`; :func:`open_trace_source` resolves a path by explicit
name, extension, or content sniffing.  Writers stream any source out
chunk by chunk, so conversion never materializes the trace.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
import zipfile
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro import obs

from repro.ingest.source import (
    DEFAULT_CHUNK_RECORDS,
    TraceChunk,
    TraceSource,
)

__all__ = [
    "FORMATS",
    "WRITERS",
    "LackeySource",
    "MTraceSource",
    "CSVSource",
    "JSONLSource",
    "RTraceSource",
    "RTraceWriter",
    "detect_format",
    "open_trace_source",
    "register_format",
    "write_trace_file",
]

# ----------------------------------------------------------------------
# Valgrind Lackey text (--tool=lackey --trace-mem=yes)
# ----------------------------------------------------------------------

#: Lackey ops that are data references (instruction fetches are "I").
_LACKEY_DATA_OPS = frozenset("LSM")


def _lackey_records(path: Path) -> Iterator[tuple[str, int]]:
    """Yield (op, byte address) for every well-formed record line."""
    with open(path, "r", errors="replace") as f:
        for raw in f:
            s = raw.strip()
            if not s or s[0] == "=":  # valgrind ==pid== banner lines
                continue
            op = s[0]
            if op != "I" and op not in _LACKEY_DATA_OPS:
                continue
            body = s[1:].strip()
            addr_text = body.split(",", 1)[0].strip()
            if not addr_text:
                raise ValueError(f"malformed lackey record: {raw!r}")
            try:
                addr = int(addr_text, 16)
            except ValueError:
                raise ValueError(f"malformed lackey record: {raw!r}") from None
            yield op, addr


class LackeySource:
    """Valgrind Lackey memory-trace text.

    Instruction-fetch records ("I") are not data accesses, but their
    count *is* the instruction count of the capture, so the pre-scan
    that sizes the source also recovers ``instructions`` for free.
    """

    name = "lackey"
    extensions = (".lackey", ".vgtrace")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        n_data = 0
        n_instr = 0
        for op, _ in _lackey_records(self.path):
            if op == "I":
                n_instr += 1
            else:
                n_data += 1
        self.n_records = n_data
        self.instructions = float(n_instr) if n_instr else None
        self.line_bytes = 64
        self.region_names: dict[int, str] = {}

    @staticmethod
    def sniff(head: bytes) -> bool:
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError:
            return False
        for line in text.splitlines()[:10]:
            s = line.strip()
            if not s or s[0] == "=":
                continue
            return (
                s[0] in "ILSM" and "," in s and s[1:2] in (" ", "\t", "")
            )
        return False

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        buf: list[int] = []
        for op, addr in _lackey_records(self.path):
            if op == "I":
                continue
            buf.append(addr)
            if len(buf) >= max_records:
                yield TraceChunk(addrs=np.array(buf, dtype=np.int64))
                buf = []
        if buf:
            yield TraceChunk(addrs=np.array(buf, dtype=np.int64))


# ----------------------------------------------------------------------
# Packed binary (DynamoRIO-memtrace-style fixed records)
# ----------------------------------------------------------------------

_MTRACE_MAGIC = b"RMEMTR01"

#: 16-byte little-endian record: address, access size, type, thread.
MTRACE_RECORD = np.dtype(
    [
        ("addr", "<u8"),
        ("size", "<u2"),
        ("type", "u1"),
        ("pad", "u1"),
        ("tid", "<u4"),
    ]
)

#: Header: magic, record count (u64), instructions (f64; NaN = unknown).
_MTRACE_HEADER_BYTES = len(_MTRACE_MAGIC) + 8 + 8


class MTraceSource:
    """Packed binary trace: fixed 16-byte records after a small header.

    The record layout follows DynamoRIO's memtrace samples (address,
    size, type, thread id per record); the header adds what a raw
    capture lacks — an exact record count and the instruction total —
    so consumers never need a sizing pass over gigabytes of records.
    """

    name = "mtrace"
    extensions = (".mtrace",)

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            header = f.read(_MTRACE_HEADER_BYTES)
        if len(header) < _MTRACE_HEADER_BYTES or not header.startswith(
            _MTRACE_MAGIC
        ):
            raise ValueError(f"{self.path}: not an mtrace file (bad magic)")
        self.n_records = int(np.frombuffer(header, "<u8", 1, 8)[0])
        instr = float(np.frombuffer(header, "<f8", 1, 16)[0])
        self.instructions = None if np.isnan(instr) else instr
        self.line_bytes = 64
        self.region_names: dict[int, str] = {}
        body = self.path.stat().st_size - _MTRACE_HEADER_BYTES
        if body != self.n_records * MTRACE_RECORD.itemsize:
            raise ValueError(
                f"{self.path}: header declares {self.n_records} records "
                f"but body holds {body} bytes "
                f"({body / MTRACE_RECORD.itemsize:g} records)"
            )

    @staticmethod
    def sniff(head: bytes) -> bool:
        return head.startswith(_MTRACE_MAGIC)

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        with open(self.path, "rb") as f:
            f.seek(_MTRACE_HEADER_BYTES)
            remaining = self.n_records
            while remaining > 0:
                count = min(remaining, max_records)
                records = np.fromfile(f, dtype=MTRACE_RECORD, count=count)
                if len(records) < count:
                    raise ValueError(
                        f"{self.path}: truncated body "
                        f"({remaining} records still expected)"
                    )
                remaining -= count
                yield TraceChunk(addrs=records["addr"].astype(np.int64))


# ----------------------------------------------------------------------
# CSV / JSONL text
# ----------------------------------------------------------------------


def _parse_int(text: str) -> int:
    text = text.strip()
    if text.lower().startswith(("0x", "-0x")):
        return int(text, 16)
    return int(text, 10)


class CSVSource:
    """``addr[,region]`` rows; decimal or 0x-hex; optional header line."""

    name = "csv"
    extensions = (".csv",)

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.line_bytes = 64
        self.instructions: float | None = None
        self.region_names: dict[int, str] = {}
        self._has_header = False
        self._has_regions = False
        n = 0
        for i, row in enumerate(self._rows()):
            if i == 0:
                try:
                    _parse_int(row[0])
                except ValueError:
                    self._has_header = True
                    continue
            n += 1
            if len(row) > 1 and row[1]:
                self._has_regions = True
        self.n_records = n

    def _rows(self) -> Iterator[list[str]]:
        with open(self.path, "r", errors="replace") as f:
            for raw in f:
                s = raw.strip()
                if s:
                    yield [c.strip() for c in s.split(",")]

    @staticmethod
    def sniff(head: bytes) -> bool:
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError:
            return False
        first = next((ln for ln in text.splitlines() if ln.strip()), "")
        cols = [c.strip() for c in first.split(",")]
        if cols and cols[0].lower() in ("addr", "address"):
            return True
        try:
            _parse_int(cols[0])
        except (ValueError, IndexError):
            return False
        return True

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        addrs: list[int] = []
        regions: list[int] = []
        for i, row in enumerate(self._rows()):
            if i == 0 and self._has_header:
                continue
            addrs.append(_parse_int(row[0]))
            if self._has_regions:
                if len(row) < 2 or not row[1]:
                    raise ValueError(
                        f"{self.path}: row {i + 1} is missing its region "
                        "column (file mixes attributed and bare rows)"
                    )
                regions.append(_parse_int(row[1]))
            if len(addrs) >= max_records:
                yield self._chunk(addrs, regions)
                addrs, regions = [], []
        if addrs:
            yield self._chunk(addrs, regions)

    def _chunk(self, addrs: list[int], regions: list[int]) -> TraceChunk:
        return TraceChunk(
            addrs=np.array(addrs, dtype=np.int64),
            regions=(
                np.array(regions, dtype=np.int32)
                if self._has_regions
                else None
            ),
        )


class JSONLSource:
    """One ``{"addr": ..., "region": ...}`` object per line."""

    name = "jsonl"
    extensions = (".jsonl", ".ndjson")

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.line_bytes = 64
        self.instructions: float | None = None
        self.region_names: dict[int, str] = {}
        self._has_regions = False
        n = 0
        for obj in self._objects():
            n += 1
            if "region" in obj:
                self._has_regions = True
        self.n_records = n

    def _objects(self) -> Iterator[dict]:
        with open(self.path, "r", errors="replace") as f:
            for lineno, raw in enumerate(f, 1):
                s = raw.strip()
                if not s:
                    continue
                try:
                    obj = json.loads(s)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: invalid JSON: {exc}"
                    ) from None
                if not isinstance(obj, dict) or "addr" not in obj:
                    raise ValueError(
                        f"{self.path}:{lineno}: expected an object with "
                        f"an 'addr' field, got {s[:60]!r}"
                    )
                yield obj

    @staticmethod
    def sniff(head: bytes) -> bool:
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError:
            return False
        first = next((ln for ln in text.splitlines() if ln.strip()), "")
        return first.lstrip().startswith("{") and "addr" in first

    @staticmethod
    def _int_field(obj: dict, key: str, path, n: int) -> int:
        # Reject JSON floats instead of truncating: 1.9 -> 1 would
        # silently alias distinct addresses (same invariant Trace and
        # TraceBuilder enforce downstream).
        value = obj[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"{path}: record {n}: {key!r} must be a JSON integer, "
                f"got {value!r}"
            )
        return value

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        addrs: list[int] = []
        regions: list[int] = []
        for obj in self._objects():
            addrs.append(self._int_field(obj, "addr", self.path, len(addrs) + 1))
            if self._has_regions:
                if "region" not in obj:
                    raise ValueError(
                        f"{self.path}: record {len(addrs)} is missing its "
                        "'region' field (file mixes attributed and bare rows)"
                    )
                regions.append(
                    self._int_field(obj, "region", self.path, len(addrs))
                )
            if len(addrs) >= max_records:
                yield self._chunk(addrs, regions)
                addrs, regions = [], []
        if addrs:
            yield self._chunk(addrs, regions)

    def _chunk(self, addrs: list[int], regions: list[int]) -> TraceChunk:
        return TraceChunk(
            addrs=np.array(addrs, dtype=np.int64),
            regions=(
                np.array(regions, dtype=np.int32)
                if self._has_regions
                else None
            ),
        )


# ----------------------------------------------------------------------
# Native .rtrace archive (chunked npz)
# ----------------------------------------------------------------------

_RTRACE_VERSION = 1


def _rtrace_fingerprint_hashers() -> tuple:
    return hashlib.blake2b(digest_size=16), hashlib.blake2b(digest_size=16)


def _rtrace_fingerprint(h_lines, h_regions, line_bytes: int) -> str:
    """Combine the per-array digests; invariant to chunk boundaries."""
    h = hashlib.blake2b(digest_size=16)
    h.update(h_lines.digest())
    h.update(h_regions.digest())
    h.update(f"line_bytes={line_bytes}".encode())
    return h.hexdigest()


class RTraceWriter:
    """Streaming writer for the native ``.rtrace`` archive.

    An ``.rtrace`` is a zip of npy chunk members plus a ``header.json``
    carrying ``line_bytes``, region names, record/instruction totals and
    a content fingerprint (blake2b over the line and region arrays,
    independent of how the stream was chunked).  Chunks are appended as
    they are produced, so conversion runs in bounded memory.
    """

    def __init__(
        self,
        path: str | Path,
        line_bytes: int,
        compression: int = zipfile.ZIP_DEFLATED,
    ) -> None:
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {line_bytes}")
        self.path = Path(path)
        self.line_bytes = line_bytes
        # ZIP_STORED archives (the artifact store's layout) can be
        # memory-mapped by readers; the content fingerprint is invariant
        # to this choice.
        self._zf = zipfile.ZipFile(self.path, "w", compression)
        self._n_chunks = 0
        self._n_records = 0
        self._h_lines, self._h_regions = _rtrace_fingerprint_hashers()
        self._closed = False

    def append(self, lines: np.ndarray, regions: np.ndarray) -> None:
        """Append one chunk of (line address, region id) records."""
        if self._closed:
            raise ValueError("writer is closed")
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        regions = np.ascontiguousarray(regions, dtype=np.int32)
        if len(lines) != len(regions):
            raise ValueError("lines and regions must have equal length")
        if len(lines) == 0:
            return
        self._h_lines.update(lines.tobytes())
        self._h_regions.update(regions.tobytes())
        self._write_member(f"chunk_{self._n_chunks:06d}.lines.npy", lines)
        self._write_member(f"chunk_{self._n_chunks:06d}.regions.npy", regions)
        self._n_chunks += 1
        self._n_records += len(lines)

    @property
    def n_records(self) -> int:
        """Records appended so far."""
        return self._n_records

    def _write_member(self, name: str, arr: np.ndarray) -> None:
        buf = io.BytesIO()
        np.lib.format.write_array(buf, arr, allow_pickle=False)
        self._zf.writestr(name, buf.getvalue())

    def close(
        self,
        instructions: float | None = None,
        region_names: dict[int, str] | None = None,
    ) -> dict:
        """Finish the archive; returns the header that was written."""
        if self._closed:
            raise ValueError("writer is closed")
        header = {
            "format": "rtrace",
            "version": _RTRACE_VERSION,
            "line_bytes": self.line_bytes,
            "n_records": self._n_records,
            "n_chunks": self._n_chunks,
            "instructions": instructions,
            "region_names": {
                str(rid): name for rid, name in (region_names or {}).items()
            },
            "fingerprint": _rtrace_fingerprint(
                self._h_lines, self._h_regions, self.line_bytes
            ),
        }
        self._zf.writestr("header.json", json.dumps(header, sort_keys=True))
        self._zf.close()
        self._closed = True
        return header


class RTraceSource:
    """Reader for the native ``.rtrace`` archive."""

    name = "rtrace"
    extensions = (".rtrace",)

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            with zipfile.ZipFile(self.path) as zf:
                header = json.loads(zf.read("header.json"))
        except (zipfile.BadZipFile, KeyError, json.JSONDecodeError) as exc:
            raise ValueError(f"{self.path}: not an rtrace archive: {exc}") from None
        if header.get("format") != "rtrace":
            raise ValueError(f"{self.path}: not an rtrace archive")
        if header.get("version") != _RTRACE_VERSION:
            raise ValueError(
                f"{self.path}: unsupported rtrace version "
                f"{header.get('version')!r} (expected {_RTRACE_VERSION})"
            )
        self.header = header
        try:
            self.n_records = int(header["n_records"])
            self.n_chunks = int(header["n_chunks"])
            self.line_bytes = int(header["line_bytes"])
            instr = header.get("instructions")
            self.instructions = float(instr) if instr is not None else None
            self.region_names = {
                int(rid): name
                for rid, name in header["region_names"].items()
            }
            self.fingerprint = header["fingerprint"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{self.path}: malformed rtrace header: {exc!r}"
            ) from None

    @staticmethod
    def sniff(head: bytes) -> bool:
        return head.startswith(b"PK\x03\x04")

    def _load_member(self, zf: zipfile.ZipFile, name: str) -> np.ndarray:
        from repro.devtools import faults
        from repro.retry import call_with_retries

        def read() -> np.ndarray:
            faults.maybe_inject("rtrace-chunk", key=name)
            with zf.open(name) as f:
                raw = faults.filter_bytes("rtrace-chunk", f.read(), key=name)
            return np.lib.format.read_array(
                io.BytesIO(raw), allow_pickle=False
            )

        # A torn or transiently unreadable member costs a bounded
        # re-read (decode errors included: a mid-write reader sees a
        # short member once, the retry sees the finished bytes).
        return call_with_retries(
            read,
            retryable=(OSError, ValueError, zipfile.BadZipFile),
            key=name,
        )

    def _mapped(self):
        """A :class:`~repro.store.mmapzip.MappedArchive`, or None.

        Opened lazily and cached: stored (uncompressed) archives — the
        artifact store's layout — serve chunk members as read-only
        views over one shared mapping, so N workers materializing the
        same trace share one page-cache copy.
        """
        if not hasattr(self, "_mapped_archive"):
            from repro.store.mmapzip import MappedArchive

            try:
                self._mapped_archive = MappedArchive(self.path)
            except (OSError, ValueError, zipfile.BadZipFile):
                self._mapped_archive = None
        return self._mapped_archive

    def line_chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(lines, regions)`` exactly as stored, zero-copy if mappable.

        The native archive stores line ids, not byte addresses;
        consumers that want lines (``materialize``) read them here and
        skip the ``line * bytes -> addr // bytes`` round trip
        :meth:`chunks` performs for the generic protocol.  Deflated
        members fall back to decompression per member.
        """
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        mapped = self._mapped()
        zf = None
        try:
            for c in range(self.n_chunks):
                lname = f"chunk_{c:06d}.lines.npy"
                rname = f"chunk_{c:06d}.regions.npy"
                traced = obs.enabled()
                t0 = time.perf_counter() if traced else 0.0
                lines = regions = None
                if mapped is not None:
                    try:
                        lines = mapped.npy_member(lname)
                        regions = mapped.npy_member(rname)
                    except (KeyError, ValueError):
                        lines = regions = None
                if lines is None or regions is None:
                    if zf is None:
                        zf = zipfile.ZipFile(self.path)
                    lines = self._load_member(zf, lname)
                    regions = self._load_member(zf, rname)
                if traced:
                    dt = time.perf_counter() - t0
                    nbytes = int(lines.nbytes) + int(regions.nbytes)
                    obs.histogram("ingest.chunk_decode_s", dt)
                    obs.event(
                        "ingest.chunk_decoded",
                        chunk=c,
                        nbytes=nbytes,
                        bytes_per_s=round(nbytes / dt) if dt > 0 else None,
                        mapped=mapped is not None and zf is None,
                    )
                if len(lines) != len(regions):
                    raise ValueError(
                        f"{self.path}: chunk {c} has mismatched "
                        "lines/regions lengths"
                    )
                for lo in range(0, len(lines), max_records):
                    hi = min(lo + max_records, len(lines))
                    yield lines[lo:hi], regions[lo:hi]
        finally:
            if zf is not None:
                zf.close()

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        for lines, regions in self.line_chunks(max_records):
            yield TraceChunk(
                addrs=lines * self.line_bytes,
                regions=regions,
            )

    def verify_fingerprint(self) -> bool:
        """Re-hash the chunk payload against the header fingerprint.

        One decompression pass checks everything: the content hash and
        that the chunks really hold the declared record count.
        """
        h_lines, h_regions = _rtrace_fingerprint_hashers()
        total = 0
        with zipfile.ZipFile(self.path) as zf:
            for c in range(self.n_chunks):
                lines = self._load_member(zf, f"chunk_{c:06d}.lines.npy")
                regions = self._load_member(zf, f"chunk_{c:06d}.regions.npy")
                if len(lines) != len(regions):
                    return False
                total += len(lines)
                h_lines.update(
                    np.ascontiguousarray(lines, dtype=np.int64).tobytes()
                )
                h_regions.update(
                    np.ascontiguousarray(regions, dtype=np.int32).tobytes()
                )
        if total != self.n_records:
            return False
        recomputed = _rtrace_fingerprint(h_lines, h_regions, self.line_bytes)
        return recomputed == self.fingerprint


# ----------------------------------------------------------------------
# Writers (streamed; any source -> any interchange format)
# ----------------------------------------------------------------------


def _write_lackey(path: Path, source: TraceSource, max_records: int) -> None:
    with open(path, "w") as f:
        for chunk in source.chunks(max_records):
            f.writelines(
                f" L {addr:08X},{source.line_bytes}\n"
                for addr in chunk.addrs.tolist()
            )


def _write_mtrace(path: Path, source: TraceSource, max_records: int) -> None:
    if source.n_records is None:
        # The header carries an exact record count, which an unbounded
        # source cannot declare up front.
        raise ValueError(
            "mtrace writes a record-count header; cannot export an "
            "unbounded source (n_records is None) — convert to a sized "
            "format (csv/jsonl/rtrace) instead"
        )
    try:
        with open(path, "wb") as f:
            f.write(_MTRACE_MAGIC)
            # Explicit little-endian, like the record body: native order
            # would corrupt the header on big-endian hosts.
            f.write(np.uint64(source.n_records).astype("<u8").tobytes())
            instr = source.instructions
            f.write(
                np.float64(instr if instr is not None else np.nan)
                .astype("<f8")
                .tobytes()
            )
            n_written = 0
            for chunk in source.chunks(max_records):
                records = np.zeros(len(chunk), dtype=MTRACE_RECORD)
                records["addr"] = chunk.addrs.astype(np.uint64)
                records["size"] = source.line_bytes
                records.tofile(f)
                n_written += len(chunk)
        if n_written != source.n_records:
            raise ValueError(
                f"source yielded {n_written} records but declared "
                f"{source.n_records}; refusing to leave a lying header"
            )
    except BaseException:
        # Never leave a header that lies about its body.
        path.unlink(missing_ok=True)
        raise


def _write_csv(path: Path, source: TraceSource, max_records: int) -> None:
    with open(path, "w") as f:
        wrote_header = False
        for chunk in source.chunks(max_records):
            if not wrote_header:
                f.write(
                    "addr,region\n" if chunk.regions is not None else "addr\n"
                )
                wrote_header = True
            if chunk.regions is not None:
                f.writelines(
                    f"{a},{r}\n"
                    for a, r in zip(
                        chunk.addrs.tolist(), chunk.regions.tolist()
                    )
                )
            else:
                f.writelines(f"{a}\n" for a in chunk.addrs.tolist())
        if not wrote_header:
            f.write("addr\n")


def _write_jsonl(path: Path, source: TraceSource, max_records: int) -> None:
    with open(path, "w") as f:
        for chunk in source.chunks(max_records):
            if chunk.regions is not None:
                f.writelines(
                    f'{{"addr": {a}, "region": {r}}}\n'
                    for a, r in zip(
                        chunk.addrs.tolist(), chunk.regions.tolist()
                    )
                )
            else:
                f.writelines(
                    f'{{"addr": {a}}}\n' for a in chunk.addrs.tolist()
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Reader registry: format name -> TraceSource class.
FORMATS: dict[str, type] = {}

#: Writer registry: format name -> write function.  ``rtrace`` is not
#: here because producing one runs the full attribution pipeline — see
#: :func:`repro.ingest.pipeline.convert_to_rtrace`.
WRITERS: dict[str, Callable[[Path, TraceSource, int], None]] = {
    "lackey": _write_lackey,
    "mtrace": _write_mtrace,
    "csv": _write_csv,
    "jsonl": _write_jsonl,
}


def register_format(cls: type) -> type:
    """Register a reader class (usable as a decorator by plugins)."""
    for attr in ("name", "extensions", "sniff", "chunks"):
        if not hasattr(cls, attr):
            raise TypeError(f"{cls.__name__} is missing {attr!r}")
    FORMATS[cls.name] = cls
    return cls


for _cls in (LackeySource, MTraceSource, CSVSource, JSONLSource, RTraceSource):
    register_format(_cls)


def detect_format(path: str | Path) -> str:
    """Resolve a trace file's format by extension, then content sniff."""
    path = Path(path)
    suffix = path.suffix.lower()
    for name, cls in FORMATS.items():
        if suffix in cls.extensions:
            return name
    try:
        with path.open("rb") as f:
            head = f.read(4096)
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from None
    # Binary magics are unambiguous; try them before text heuristics.
    for name in ("rtrace", "mtrace", "jsonl", "lackey", "csv"):
        cls = FORMATS.get(name)
        if cls is not None and cls.sniff(head):
            return name
    raise ValueError(
        f"cannot detect trace format of {path}; "
        f"pass one of: {', '.join(sorted(FORMATS))}"
    )


def open_trace_source(path: str | Path, fmt: str | None = None) -> TraceSource:
    """Open a trace file as a :class:`TraceSource`.

    Args:
        path: trace file.
        fmt: format name; auto-detected when omitted.
    """
    if fmt is None:
        fmt = detect_format(path)
    try:
        cls = FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {', '.join(sorted(FORMATS))}"
        ) from None
    return cls(path)


def write_trace_file(
    path: str | Path,
    source: TraceSource,
    fmt: str | None = None,
    max_records: int = DEFAULT_CHUNK_RECORDS,
) -> None:
    """Export a source to an interchange format, streaming chunk by chunk.

    Args:
        path: destination file.
        source: any :class:`TraceSource` (e.g. :class:`ArraySource`
            wrapping a built trace).
        fmt: one of :data:`WRITERS`; inferred from the extension when
            omitted.
        max_records: chunk size to stream with.
    """
    path = Path(path)
    if fmt is None:
        suffix = path.suffix.lower()
        for name, cls in FORMATS.items():
            if suffix in cls.extensions and name in WRITERS:
                fmt = name
                break
        else:
            raise ValueError(
                f"cannot infer writable format from {path.name!r}; "
                f"pass one of: {', '.join(sorted(WRITERS))}"
            )
    try:
        writer = WRITERS[fmt]
    except KeyError:
        raise ValueError(
            f"no writer for format {fmt!r}; known: {', '.join(sorted(WRITERS))}"
        ) from None
    writer(path, source, max_records)
