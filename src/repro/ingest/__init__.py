"""External-trace ingestion & out-of-core streaming profiling.

Turns the reproduction from a closed fixture generator into a system
that accepts outside traffic: externally captured memory traces
(Valgrind Lackey, DynamoRIO-memtrace-style binaries, CSV/JSONL, or the
native ``.rtrace`` archive) become first-class workloads every scheme,
sweep and campaign can run.

The pipeline::

    open_trace_source(path)          # pluggable format readers
      -> AttributionTable.attribute  # address ranges -> Whirlpool regions
      -> convert_to_rtrace / materialize
      -> workloads.registry          # `python -m repro ingest register`

and, for traces too large to hold in memory,
:class:`StreamingStackProfiler` profiles straight off the chunk stream,
bit-identical to the in-memory engine.

Live traffic is ingested the same way: :func:`open_stream_source`
follows a growing text trace (or stdin) as an *unbounded*
:class:`IterableSource` (``n_records is None``), and :func:`run_watch`
classifies it epoch-by-epoch (``python -m repro ingest watch``).
"""

from repro.ingest.attribute import FALLBACK_NAME, AttributionTable
from repro.ingest.formats import (
    FORMATS,
    WRITERS,
    CSVSource,
    JSONLSource,
    LackeySource,
    MTraceSource,
    RTraceSource,
    RTraceWriter,
    detect_format,
    open_trace_source,
    register_format,
    write_trace_file,
)
from repro.ingest.pipeline import (
    AttributedSource,
    convert_to_rtrace,
    load_workload,
    materialize,
    resolve_instructions,
)
from repro.ingest.source import (
    DEFAULT_CHUNK_RECORDS,
    ArraySource,
    IterableSource,
    TraceChunk,
    TraceSource,
)
from repro.ingest.stream import StreamingProfile, StreamingStackProfiler
from repro.ingest.watch import follow_lines, open_stream_source, run_watch

__all__ = [
    "ArraySource",
    "AttributedSource",
    "AttributionTable",
    "CSVSource",
    "DEFAULT_CHUNK_RECORDS",
    "FALLBACK_NAME",
    "FORMATS",
    "IterableSource",
    "JSONLSource",
    "LackeySource",
    "MTraceSource",
    "RTraceSource",
    "RTraceWriter",
    "StreamingProfile",
    "StreamingStackProfiler",
    "TraceChunk",
    "TraceSource",
    "WRITERS",
    "convert_to_rtrace",
    "detect_format",
    "follow_lines",
    "load_workload",
    "materialize",
    "open_stream_source",
    "open_trace_source",
    "register_format",
    "resolve_instructions",
    "run_watch",
    "write_trace_file",
]
