"""External-trace ingestion & out-of-core streaming profiling.

Turns the reproduction from a closed fixture generator into a system
that accepts outside traffic: externally captured memory traces
(Valgrind Lackey, DynamoRIO-memtrace-style binaries, CSV/JSONL, or the
native ``.rtrace`` archive) become first-class workloads every scheme,
sweep and campaign can run.

The pipeline::

    open_trace_source(path)          # pluggable format readers
      -> AttributionTable.attribute  # address ranges -> Whirlpool regions
      -> convert_to_rtrace / materialize
      -> workloads.registry          # `python -m repro ingest register`

and, for traces too large to hold in memory,
:class:`StreamingStackProfiler` profiles straight off the chunk stream,
bit-identical to the in-memory engine.
"""

from repro.ingest.attribute import FALLBACK_NAME, AttributionTable
from repro.ingest.formats import (
    FORMATS,
    WRITERS,
    CSVSource,
    JSONLSource,
    LackeySource,
    MTraceSource,
    RTraceSource,
    RTraceWriter,
    detect_format,
    open_trace_source,
    register_format,
    write_trace_file,
)
from repro.ingest.pipeline import (
    AttributedSource,
    convert_to_rtrace,
    load_workload,
    materialize,
    resolve_instructions,
)
from repro.ingest.source import (
    DEFAULT_CHUNK_RECORDS,
    ArraySource,
    TraceChunk,
    TraceSource,
)
from repro.ingest.stream import StreamingStackProfiler

__all__ = [
    "ArraySource",
    "AttributedSource",
    "AttributionTable",
    "CSVSource",
    "DEFAULT_CHUNK_RECORDS",
    "FALLBACK_NAME",
    "FORMATS",
    "JSONLSource",
    "LackeySource",
    "MTraceSource",
    "RTraceSource",
    "RTraceWriter",
    "StreamingStackProfiler",
    "TraceChunk",
    "TraceSource",
    "WRITERS",
    "convert_to_rtrace",
    "detect_format",
    "load_workload",
    "materialize",
    "open_trace_source",
    "register_format",
    "resolve_instructions",
    "write_trace_file",
]
