"""The chunk-iterator protocol external trace readers implement.

A :class:`TraceSource` is a stream of memory accesses delivered as
bounded :class:`TraceChunk` batches.  File-backed readers are *sized
and replayable*: they know how many records they hold (``n_records``),
and :meth:`chunks` can be called repeatedly, each call yielding the
whole trace again.  Live streams (a growing file, a pipe, a generator)
cannot know their length up front, so the protocol also admits
*unbounded* sources — ``n_records`` is ``None`` and :meth:`chunks` may
be one-shot (:class:`IterableSource`).  Consumers that need equal-width
interval windows (``profile_source``, format writers with record-count
headers) require a sized source and raise a clear error otherwise;
record-at-a-time consumers (``materialize``, validation, the online
classifier's open-ended epochs) accept both.  Everything downstream —
region attribution, out-of-core profiling, format conversion — consumes
this protocol, so adding a trace format means writing one reader class
and registering it (see :mod:`repro.ingest.formats`), exactly the
pluggable source/pipeline idiom of instrumentation frameworks.

Addresses are *byte* addresses: line granularity is a consumer decision
(``addr // line_bytes``), and region attribution needs byte-accurate
ranges.  Sources that are natively line-granular (``.rtrace``) expose
``line * line_bytes`` so the line ids survive a round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

__all__ = [
    "ArraySource",
    "IterableSource",
    "TraceChunk",
    "TraceSource",
    "DEFAULT_CHUNK_RECORDS",
]

#: Default records per chunk (~16 MB of int64 addresses).
DEFAULT_CHUNK_RECORDS = 1 << 21


@dataclass
class TraceChunk:
    """One bounded batch of trace records, in access order.

    Attributes:
        addrs: int64 byte addresses.
        regions: int32 region id per access, or None when the source
            carries no attribution (raw address traces).
    """

    addrs: np.ndarray
    regions: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
        if len(self.addrs) and int(self.addrs.min()) < 0:
            raise ValueError(
                "trace chunk contains negative addresses "
                "(corrupt capture or >2^63 address misread)"
            )
        if self.regions is not None:
            self.regions = np.ascontiguousarray(self.regions, dtype=np.int32)
            if len(self.regions) != len(self.addrs):
                raise ValueError("addrs and regions must have equal length")
            if len(self.regions) and int(self.regions.min()) < 0:
                # Fail at ingest, not at first simulation of a
                # registered archive.
                raise ValueError(
                    "trace chunk contains negative region ids"
                )

    def __len__(self) -> int:
        return len(self.addrs)


@runtime_checkable
class TraceSource(Protocol):
    """What every pluggable trace reader provides.

    Attributes:
        n_records: total data records, or None for unbounded sources
            (live streams whose length is unknowable up front).  Sized
            file formats pre-scan once on open so interval windowing
            and progress reporting never need a second guess; consumers
            that require a sized source (equal-width interval grids,
            record-count file headers) must check for None and raise a
            clear error rather than windowing a live stream.
        line_bytes: cache-line size the trace should be profiled at.
        instructions: total instructions the trace represents, or None
            when the capture carries no instruction information.
        region_names: region id -> name for attributed sources ({} when
            unattributed).
    """

    n_records: int | None
    line_bytes: int
    instructions: float | None
    region_names: dict[int, str]

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        """Yield the whole trace as chunks of at most ``max_records``."""
        ...


class ArraySource:
    """An in-memory :class:`TraceSource` over address/region arrays.

    The adapter between the in-process world and the streaming one: it
    wraps a built :class:`~repro.workloads.trace.Trace` (or raw arrays)
    so exporters and the out-of-core profiler can be driven — and
    differentially tested — against in-memory data at any chunk size.
    """

    def __init__(
        self,
        addrs: np.ndarray,
        regions: np.ndarray | None = None,
        instructions: float | None = None,
        line_bytes: int = 64,
        region_names: dict[int, str] | None = None,
    ) -> None:
        self._addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        self._regions = (
            np.ascontiguousarray(regions, dtype=np.int32)
            if regions is not None
            else None
        )
        if self._regions is not None and len(self._regions) != len(self._addrs):
            raise ValueError("addrs and regions must have equal length")
        self.n_records = len(self._addrs)
        self.line_bytes = line_bytes
        self.instructions = instructions
        self.region_names = dict(region_names or {})

    @classmethod
    def from_trace(cls, trace: "Trace") -> "ArraySource":
        """Wrap a :class:`~repro.workloads.trace.Trace` (line-granular).

        Addresses are the line base addresses, so re-ingesting at the
        same ``line_bytes`` reproduces the trace exactly.
        """
        return cls(
            addrs=trace.lines * trace.line_bytes,
            regions=trace.regions,
            instructions=trace.instructions,
            line_bytes=trace.line_bytes,
            region_names=dict(trace.region_names),
        )

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        for lo in range(0, self.n_records, max_records):
            hi = min(lo + max_records, self.n_records)
            yield TraceChunk(
                addrs=self._addrs[lo:hi],
                regions=(
                    self._regions[lo:hi] if self._regions is not None else None
                ),
            )


class IterableSource:
    """An *unbounded*, one-shot :class:`TraceSource` over a chunk iterable.

    Wraps any iterable (typically a generator) of :class:`TraceChunk`
    batches as a source with ``n_records = None``: the length is
    unknowable until the underlying stream ends, which is exactly the
    live-capture case the relaxed protocol exists for.  Because a
    generator cannot be rewound, :meth:`chunks` may be consumed once;
    a second call raises rather than silently replaying nothing.

    Consumers that need a sized source (``profile_source``'s interval
    windows, record-count file headers) reject this with a clear error;
    record-at-a-time consumers — ``materialize``, ``ingest validate``,
    :class:`repro.core.whirltool.online.OnlineWhirlTool` — stream it
    through unchanged.
    """

    def __init__(
        self,
        chunk_iter: Iterable[TraceChunk],
        line_bytes: int = 64,
        instructions: float | None = None,
        region_names: dict[int, str] | None = None,
    ) -> None:
        self._iter: Iterator[TraceChunk] | None = iter(chunk_iter)
        self.n_records: int | None = None
        self.line_bytes = line_bytes
        self.instructions = instructions
        self.region_names = dict(region_names or {})

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        if self._iter is None:
            raise ValueError(
                "IterableSource is one-shot and already consumed; wrap a "
                "fresh iterator (or use a sized, replayable source)"
            )
        it, self._iter = self._iter, None
        for chunk in it:
            # Honor the chunk-size bound even when the producer hands
            # over larger batches.
            for lo in range(0, len(chunk), max_records):
                hi = min(lo + max_records, len(chunk))
                yield TraceChunk(
                    addrs=chunk.addrs[lo:hi],
                    regions=(
                        chunk.regions[lo:hi]
                        if chunk.regions is not None
                        else None
                    ),
                )
