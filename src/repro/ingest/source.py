"""The chunk-iterator protocol external trace readers implement.

A :class:`TraceSource` is a *sized, replayable* stream of memory
accesses: it knows how many records it holds, and :meth:`chunks` can be
called repeatedly, each call yielding the whole trace again as bounded
:class:`TraceChunk` batches.  Everything downstream — region
attribution, out-of-core profiling, format conversion — consumes this
protocol, so adding a trace format means writing one reader class and
registering it (see :mod:`repro.ingest.formats`), exactly the pluggable
source/pipeline idiom of instrumentation frameworks.

Addresses are *byte* addresses: line granularity is a consumer decision
(``addr // line_bytes``), and region attribution needs byte-accurate
ranges.  Sources that are natively line-granular (``.rtrace``) expose
``line * line_bytes`` so the line ids survive a round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

__all__ = ["ArraySource", "TraceChunk", "TraceSource", "DEFAULT_CHUNK_RECORDS"]

#: Default records per chunk (~16 MB of int64 addresses).
DEFAULT_CHUNK_RECORDS = 1 << 21


@dataclass
class TraceChunk:
    """One bounded batch of trace records, in access order.

    Attributes:
        addrs: int64 byte addresses.
        regions: int32 region id per access, or None when the source
            carries no attribution (raw address traces).
    """

    addrs: np.ndarray
    regions: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
        if len(self.addrs) and int(self.addrs.min()) < 0:
            raise ValueError(
                "trace chunk contains negative addresses "
                "(corrupt capture or >2^63 address misread)"
            )
        if self.regions is not None:
            self.regions = np.ascontiguousarray(self.regions, dtype=np.int32)
            if len(self.regions) != len(self.addrs):
                raise ValueError("addrs and regions must have equal length")
            if len(self.regions) and int(self.regions.min()) < 0:
                # Fail at ingest, not at first simulation of a
                # registered archive.
                raise ValueError(
                    "trace chunk contains negative region ids"
                )

    def __len__(self) -> int:
        return len(self.addrs)


@runtime_checkable
class TraceSource(Protocol):
    """What every pluggable trace reader provides.

    Attributes:
        n_records: total data records (known up front; text formats
            pre-scan once on open so interval windowing and progress
            reporting never need a second guess).
        line_bytes: cache-line size the trace should be profiled at.
        instructions: total instructions the trace represents, or None
            when the capture carries no instruction information.
        region_names: region id -> name for attributed sources ({} when
            unattributed).
    """

    n_records: int
    line_bytes: int
    instructions: float | None
    region_names: dict[int, str]

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        """Yield the whole trace as chunks of at most ``max_records``."""
        ...


class ArraySource:
    """An in-memory :class:`TraceSource` over address/region arrays.

    The adapter between the in-process world and the streaming one: it
    wraps a built :class:`~repro.workloads.trace.Trace` (or raw arrays)
    so exporters and the out-of-core profiler can be driven — and
    differentially tested — against in-memory data at any chunk size.
    """

    def __init__(
        self,
        addrs: np.ndarray,
        regions: np.ndarray | None = None,
        instructions: float | None = None,
        line_bytes: int = 64,
        region_names: dict[int, str] | None = None,
    ) -> None:
        self._addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        self._regions = (
            np.ascontiguousarray(regions, dtype=np.int32)
            if regions is not None
            else None
        )
        if self._regions is not None and len(self._regions) != len(self._addrs):
            raise ValueError("addrs and regions must have equal length")
        self.n_records = len(self._addrs)
        self.line_bytes = line_bytes
        self.instructions = instructions
        self.region_names = dict(region_names or {})

    @classmethod
    def from_trace(cls, trace: "Trace") -> "ArraySource":
        """Wrap a :class:`~repro.workloads.trace.Trace` (line-granular).

        Addresses are the line base addresses, so re-ingesting at the
        same ``line_bytes`` reproduces the trace exactly.
        """
        return cls(
            addrs=trace.lines * trace.line_bytes,
            regions=trace.regions,
            instructions=trace.instructions,
            line_bytes=trace.line_bytes,
            region_names=dict(trace.region_names),
        )

    def chunks(
        self, max_records: int = DEFAULT_CHUNK_RECORDS
    ) -> Iterator[TraceChunk]:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        for lo in range(0, self.n_records, max_records):
            hi = min(lo + max_records, self.n_records)
            yield TraceChunk(
                addrs=self._addrs[lo:hi],
                regions=(
                    self._regions[lo:hi] if self._regions is not None else None
                ),
            )
