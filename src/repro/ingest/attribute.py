"""Region attribution: mapping raw trace addresses to Whirlpool regions.

External captures carry bare addresses; the paper's classification
operates on *regions* (one per data structure / allocation callpoint).
An :class:`AttributionTable` closes that gap: an address-range -> region
table built from an allocation log — either the in-process
:class:`~repro.mem.allocator.HeapAllocator`'s live allocations or a
JSONL log captured alongside the trace — with a vectorized lookup and
an "unattributed -> heap pool" fallback for stack, globals, and any
allocation the log missed.

Ranges are validated disjoint up front
(:func:`repro.mem.allocator.allocation_ranges`): overlapping live
allocations mean a corrupt log, not a tie to break.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.mem.allocator import Allocation, HeapAllocator, allocation_ranges

__all__ = ["AttributionTable", "FALLBACK_NAME"]

#: Name of the fallback region unattributed addresses land in.
FALLBACK_NAME = "heap"


@dataclass
class AttributionTable:
    """Sorted address-range -> region table with a fallback region.

    Attributes:
        starts: int64 range base addresses, sorted ascending.
        ends: int64 one-past-the-end addresses, aligned with ``starts``.
        regions: int32 region id per range.
        region_names: region id -> name (includes the fallback).
        fallback_region: region id for addresses no range covers.
    """

    starts: np.ndarray
    ends: np.ndarray
    regions: np.ndarray
    region_names: dict[int, str] = field(default_factory=dict)
    fallback_region: int = 0

    def __post_init__(self) -> None:
        self.starts = np.ascontiguousarray(self.starts, dtype=np.int64)
        self.ends = np.ascontiguousarray(self.ends, dtype=np.int64)
        self.regions = np.ascontiguousarray(self.regions, dtype=np.int32)
        if not (len(self.starts) == len(self.ends) == len(self.regions)):
            raise ValueError("starts, ends and regions must have equal length")
        if len(self.starts):
            if np.any(self.ends <= self.starts):
                raise ValueError("every range must satisfy end > start")
            if np.any(np.diff(self.starts) < 0):
                raise ValueError("ranges must be sorted by start address")
            if np.any(self.ends[:-1] > self.starts[1:]):
                raise ValueError("ranges must be disjoint")
            if int(self.regions.min()) < 0:
                raise ValueError("region ids must be non-negative")
        if self.fallback_region < 0:
            raise ValueError("fallback_region must be non-negative")
        self.region_names.setdefault(int(self.fallback_region), FALLBACK_NAME)

    @classmethod
    def from_allocations(
        cls,
        allocs: list[Allocation],
        names: dict[int, str] | None = None,
        fallback_region: int | None = None,
    ) -> "AttributionTable":
        """Build from live allocations (region id = callpoint id).

        Args:
            allocs: live allocations (e.g. ``heap.live_allocations``).
            names: optional callpoint id -> name.
            fallback_region: id for unattributed addresses; defaults to
                one above the largest callpoint (0 for an empty table),
                so it can never shadow a real region.
        """
        starts, ends, callpoints = allocation_ranges(allocs)
        if fallback_region is None:
            fallback_region = int(callpoints.max()) + 1 if len(callpoints) else 0
        region_names = dict(names or {})
        return cls(
            starts=starts,
            ends=ends,
            regions=callpoints.astype(np.int32),
            region_names=region_names,
            fallback_region=int(fallback_region),
        )

    @classmethod
    def from_heap(
        cls, heap: HeapAllocator, names: dict[int, str] | None = None
    ) -> "AttributionTable":
        """Build from a heap's live allocations."""
        return cls.from_allocations(heap.live_allocations, names=names)

    @classmethod
    def from_log(cls, path: str | Path) -> "AttributionTable":
        """Load an allocation log (JSONL).

        Each line is ``{"base": int, "size": int, "region": int}`` with
        an optional ``"name"``; a line ``{"fallback_region": int}``
        overrides the fallback id.
        """
        path = Path(path)
        allocs: list[Allocation] = []
        names: dict[int, str] = {}
        fallback: int | None = None
        with open(path) as f:
            for lineno, raw in enumerate(f, 1):
                s = raw.strip()
                if not s:
                    continue
                try:
                    obj = json.loads(s)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: invalid JSON: {exc}"
                    ) from None
                if "fallback_region" in obj and "base" not in obj:
                    fallback = int(obj["fallback_region"])
                    continue
                try:
                    base = int(obj["base"])
                    size = int(obj["size"])
                    region = int(obj["region"])
                except (KeyError, TypeError, ValueError):
                    raise ValueError(
                        f"{path}:{lineno}: expected base/size/region fields, "
                        f"got {s[:80]!r}"
                    ) from None
                if size <= 0:
                    raise ValueError(
                        f"{path}:{lineno}: size must be positive, got {size}"
                    )
                allocs.append(
                    Allocation(base=base, size=size, pool=-1, callpoint=region)
                )
                if "name" in obj:
                    names[region] = str(obj["name"])
        return cls.from_allocations(
            allocs, names=names, fallback_region=fallback
        )

    def to_log(self, path: str | Path) -> None:
        """Write the table back out as an allocation log (JSONL)."""
        with open(path, "w") as f:
            f.write(
                json.dumps({"fallback_region": int(self.fallback_region)})
                + "\n"
            )
            for start, end, region in zip(
                self.starts.tolist(), self.ends.tolist(), self.regions.tolist()
            ):
                obj = {"base": start, "size": end - start, "region": region}
                name = self.region_names.get(region)
                if name is not None:
                    obj["name"] = name
                f.write(json.dumps(obj) + "\n")

    def attribute(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized address -> region id lookup.

        Addresses outside every range map to :attr:`fallback_region`.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.full(len(addrs), self.fallback_region, dtype=np.int32)
        if len(self.starts) == 0 or len(addrs) == 0:
            return out
        idx = np.searchsorted(self.starts, addrs, side="right") - 1
        valid = idx >= 0
        hit = np.zeros(len(addrs), dtype=bool)
        hit[valid] = addrs[valid] < self.ends[idx[valid]]
        out[hit] = self.regions[idx[hit]]
        return out

    @property
    def n_ranges(self) -> int:
        """Number of attributed address ranges."""
        return len(self.starts)
