"""Stream-prefetcher model (Appendix A).

The paper also evaluated systems with stream prefetchers and found
Whirlpool's *relative* performance unchanged, while prefetchers add
undesirable data-movement energy.  This module models an L2-level
stream prefetcher as a trace transformation: accesses that continue a
detected per-region sequential run are covered by prefetches — they stop
stalling the core (removed from the LLC demand trace) but still move
data (counted as prefetch traffic that the energy accounting charges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.workloads.trace import Trace

__all__ = ["PrefetchResult", "apply_stream_prefetcher", "prefetch_energy"]


@dataclass
class PrefetchResult:
    """Outcome of prefetch filtering.

    Attributes:
        trace: the demand trace with covered accesses removed.
        covered: number of accesses covered by prefetches.
        issued: prefetches issued (covered + overshoot waste).
        accuracy: covered / issued.
    """

    trace: Trace
    covered: int
    issued: int

    @property
    def accuracy(self) -> float:
        """Useful fraction of issued prefetches."""
        return self.covered / self.issued if self.issued else 0.0


def apply_stream_prefetcher(
    trace: Trace, min_run: int = 3, degree: int = 4, waste: float = 0.25
) -> PrefetchResult:
    """Filter a trace through a per-region stream prefetcher.

    An access is *covered* when it extends a sequential line run of at
    least ``min_run`` within its region's own stream (the prefetcher has
    locked onto the stream and runs ``degree`` lines ahead).  ``waste``
    models overshoot at stream ends: issued = covered * (1 + waste).

    Args:
        trace: input LLC demand trace.
        min_run: run length before the prefetcher locks on.
        degree: prefetch depth (documentation of the modeled hardware;
            coverage is run-based, so depth only affects overshoot).
        waste: overshoot fraction.
    """
    lines = trace.lines
    regions = trace.regions
    # Per-region previous line + run length, computed via grouped scan.
    order = np.argsort(regions, kind="stable")
    g_lines = lines[order]
    g_regions = regions[order]
    sequential = np.zeros(len(lines), dtype=bool)
    same_region = g_regions[1:] == g_regions[:-1]
    succ = g_lines[1:] == g_lines[:-1] + 1
    step_seq = same_region & succ
    # Run length ending at each grouped position.
    run = np.zeros(len(lines), dtype=np.int32)
    for i in range(1, len(lines)):
        run[i] = run[i - 1] + 1 if step_seq[i - 1] else 0
    covered_grouped = run >= min_run
    sequential[order] = covered_grouped
    keep = ~sequential
    covered = int(np.count_nonzero(sequential))
    filtered = Trace(
        lines=lines[keep],
        regions=regions[keep],
        instructions=trace.instructions,
        line_bytes=trace.line_bytes,
        region_names=trace.region_names,
    )
    issued = int(round(covered * (1 + waste)))
    return PrefetchResult(trace=filtered, covered=covered, issued=issued)


def prefetch_energy(
    result: PrefetchResult, config: SystemConfig, core: int = 0
) -> EnergyBreakdown:
    """Data-movement energy of the prefetch traffic itself.

    Every issued prefetch moves a line from memory (or a far bank) into
    the L2 — the "undesirable data movement energy" the paper cites for
    excluding prefetchers from the main evaluation.
    """
    mem_hops = config.geometry.mem_hops(core)
    return config.energy.memory_access(mem_hops, float(result.issued))
