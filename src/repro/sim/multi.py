"""Multiprogrammed-mix simulation (Fig 22 methodology).

Each program runs on its own core; all programs' VCs compete for the one
LLC inside a single scheme instance (Jigsaw/Whirlpool partition across
programs; S-NUCA shares via the combined-curve model; IdealSPD gives each
core its private region).  Weighted speedup follows the standard
definition, Σ IPC_shared / IPC_alone, with IPC_alone measured running the
program alone under Jigsaw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.schemes.base import SchemeResult, VCSpec
from repro.schemes.classifiers import Classifier, SingleVCClassifier
from repro.sim.driver import SchemeFactory, default_sample_shift
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Workload

__all__ = ["MixResult", "simulate_mix", "weighted_speedup"]


@dataclass
class MixResult:
    """Outcome of one mix under one scheme."""

    scheme_name: str
    per_app: list[SchemeResult] = field(default_factory=list)

    @property
    def energy(self) -> EnergyBreakdown:
        """Total data-movement energy across the mix."""
        total = EnergyBreakdown()
        for r in self.per_app:
            total = total + r.energy
        return total

    def ipcs(self) -> list[float]:
        """Per-app IPCs."""
        return [r.ipc for r in self.per_app]


def simulate_mix(
    workloads: list[Workload],
    config: SystemConfig,
    scheme_factory: SchemeFactory,
    classifiers: list[Classifier] | None = None,
    n_intervals: int = 16,
    use_cache: bool = True,
    sample_shift: int | None = None,
    engine: str = "batched",
) -> MixResult:
    """Run a mix of programs, one per core, under one scheme.

    Args:
        workloads: one program per core (len <= config cores).
        config: chip configuration.
        scheme_factory: ``(config, vcs) -> Scheme``.
        classifiers: per-app VC classifiers (default: single VC each).
        n_intervals: reconfiguration intervals over the mix window.
        sample_shift: address-sampling override (default: per-workload
            :func:`default_sample_shift`).
        engine: ``"batched"`` makes one joint decision per interval and
            batch-accounts the whole run; ``"serial"`` is the retained
            interval-by-interval loop.  Results are identical (pinned by
            the differential tests).
    """
    if engine not in ("batched", "serial"):
        raise ValueError(f"unknown engine {engine!r}")
    if len(workloads) > config.n_cores:
        raise ValueError(
            f"{len(workloads)} programs > {config.n_cores} cores"
        )
    if classifiers is None:
        classifiers = [SingleVCClassifier()] * len(workloads)
    # Build a joint VC space: per-app vc ids offset into a global space.
    all_specs: list[VCSpec] = []
    app_curves = []
    app_vc_ids: list[list[int]] = []
    next_vc = 0
    for core, (workload, classifier) in enumerate(zip(workloads, classifiers)):
        mapping, specs = classifier.classify(workload, owner_core=core)
        remap = {s.vc_id: next_vc + i for i, s in enumerate(specs)}
        next_vc += len(specs)
        global_specs = [
            VCSpec(
                vc_id=remap[s.vc_id],
                name=f"{workload.name}.{s.name}",
                owner_core=core,
                bypassable=s.bypassable,
            )
            for s in specs
        ]
        all_specs.extend(global_specs)
        global_mapping = {rid: remap[vc] for rid, vc in mapping.items()}
        curves = profile_vcs(
            workload.trace,
            global_mapping,
            chunk_bytes=config.chunk_bytes,
            n_chunks=config.model_chunks,
            n_intervals=n_intervals,
            sample_shift=(
                default_sample_shift(workload)
                if sample_shift is None
                else sample_shift
            ),
            use_cache=use_cache,
        )
        app_curves.append(curves)
        app_vc_ids.append([s.vc_id for s in global_specs])

    scheme = scheme_factory(config, all_specs)
    per_app = [
        SchemeResult(name=scheme.name, base_cpi=config.base_cpi)
        for __ in workloads
    ]
    if engine == "serial":
        interval_stats = _step_serial(scheme, app_curves, n_intervals)
    else:
        interval_stats = _step_batched(scheme, app_curves, n_intervals)
    for stats in interval_stats:
        # Attribute each joint interval's stalls and energy per app.
        for app_idx, workload in enumerate(workloads):
            vc_ids = set(app_vc_ids[app_idx])
            instr = workload.trace.instructions / n_intervals
            app_stats = _extract_app(stats, vc_ids, instr)
            per_app[app_idx].add(app_stats)
    return MixResult(scheme_name=scheme.name, per_app=per_app)


def _step_serial(scheme, app_curves, n_intervals):
    """The retained interval-by-interval joint loop (differential oracle)."""
    out = []
    for t in range(n_intervals):
        decide = {}
        actual = {}
        for curves in app_curves:
            for vc, series in curves.items():
                decide[vc] = series[max(t - 1, 0)]
                actual[vc] = series[t]
        # One joint decision + accounting step.
        allocations = scheme.decide(decide)
        out.append(scheme.account(allocations, actual, instructions=0.0))
    return out


def _step_batched(scheme, app_curves, n_intervals):
    """Batched joint stepping: decide per interval, account all at once.

    All programs share one scheme instance, so each interval is still a
    single joint decision — one batched partition call across every
    program's VCs for Jigsaw/Whirlpool — while the accounting runs as
    stacked array operations over the whole run.
    """
    decide_series: dict[int, list] = {}
    actual_series: dict[int, list] = {}
    for curves in app_curves:
        for vc, series in curves.items():
            decide_series[vc] = [
                series[max(t - 1, 0)] for t in range(n_intervals)
            ]
            actual_series[vc] = list(series)
    return scheme.step_batch(
        decide_series, actual_series, 0.0, n_intervals=n_intervals
    )


def _extract_app(stats, vc_ids, instructions):
    """Slice one app's share out of a joint IntervalStats."""
    from repro.schemes.base import IntervalStats

    out = IntervalStats(instructions=instructions)
    total_acc = sum(stats.vc_accesses.values()) or 1.0
    for vc in vc_ids:
        if vc not in stats.vc_accesses:
            continue
        acc = stats.vc_accesses[vc]
        misses = stats.vc_misses.get(vc, 0.0)
        byp = acc if stats.vc_bypass.get(vc) else 0.0
        out.bypasses += byp
        if not stats.vc_bypass.get(vc):
            out.misses += misses
            out.hits += acc - misses
        out.stall_cycles += stats.vc_stalls.get(vc, 0.0)
        out.vc_sizes[vc] = stats.vc_sizes.get(vc, 0.0)
        out.vc_hops[vc] = stats.vc_hops.get(vc, 0.0)
        out.vc_bypass[vc] = stats.vc_bypass.get(vc, False)
        out.vc_accesses[vc] = acc
        out.vc_misses[vc] = misses
        out.vc_stalls[vc] = stats.vc_stalls.get(vc, 0.0)
        # Energy attribution: proportional to the app's access share.
        out.energy = out.energy + stats.energy.scaled(acc / total_acc)
    return out


def weighted_speedup(
    mix_result: MixResult, alone_ipcs: list[float]
) -> float:
    """Σ IPC_shared / IPC_alone over the mix's programs."""
    if len(mix_result.per_app) != len(alone_ipcs):
        raise ValueError("alone_ipcs length mismatch")
    return sum(
        r.ipc / max(alone, 1e-12)
        for r, alone in zip(mix_result.per_app, alone_ipcs)
    )
