"""16-core parallel evaluation (Fig 13).

Evaluates a :class:`~repro.parallel.task.ParallelWorkload` under the four
configurations the paper compares:

- ``snuca`` — conventional work stealing, S-NUCA cache.
- ``jigsaw`` — conventional work stealing, Jigsaw.  Work stealing makes
  most data multi-core, so it collapses into one process VC and performs
  like S-NUCA (the paper's observation).
- ``jigsaw+paws`` — PaWS scheduling improves private-cache locality and
  keeps more data single-core, but the shared data still lands in the
  process VC.
- ``whirlpool+paws`` — each partition is a pool with its own VC placed
  near its home core; even data accessed by thieves stays close to the
  cores that use it most.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.curves.combine import shared_cache_misses
from repro.curves.latency import latency_curve
from repro.curves.miss_curve import MissCurve
from repro.curves.partition import partition_cost_curves
from repro.curves.reuse import StackDistanceProfiler
from repro.nuca.config import SystemConfig
from repro.nuca.energy import EnergyBreakdown
from repro.parallel.scheduler import Schedule, schedule_tasks
from repro.parallel.task import ParallelWorkload
from repro.schemes.placement import trading_placement

__all__ = ["ParallelResult", "evaluate_parallel", "PARALLEL_SCHEMES"]

PARALLEL_SCHEMES = ("snuca", "jigsaw", "jigsaw+paws", "whirlpool+paws")

#: Fraction of home-core accesses the private caches absorb under PaWS
#: (better reference locality in L1/L2; paper Sec 3.4).
L2_LOCAL_FILTER = 0.2

#: A region is thread-private to a core if it gets this share of accesses.
PRIVATE_THRESHOLD = 0.9


@dataclass
class ParallelResult:
    """Outcome of one parallel configuration."""

    scheme: str
    cycles: float
    energy: EnergyBreakdown
    schedule: Schedule
    vc_sizes: dict[int, float] = field(default_factory=dict)
    llc_accesses: float = 0.0
    misses: float = 0.0


def _profile_regions(
    workload: ParallelWorkload,
    schedule: Schedule,
    config: SystemConfig,
    local_filter: float,
) -> tuple[dict[int, MissCurve], np.ndarray, np.ndarray]:
    """Per-region curves + per-(region, core) access counts.

    Returns (curves, counts[region, core], core_accesses).
    """
    n_cores = config.n_cores
    region_ids = sorted(workload.region_names)
    index_of = {r: i for i, r in enumerate(region_ids)}
    counts = np.zeros((len(region_ids), n_cores))
    streams: dict[int, list[np.ndarray]] = {r: [] for r in region_ids}
    for tid, task in enumerate(workload.tasks):
        core = schedule.assignment[tid]
        for region, addrs in task.streams.items():
            n = len(addrs)
            if n == 0:
                continue
            # PaWS locality: home-core accesses partially absorbed by L2.
            if local_filter > 0 and core == workload.partition_of_region.get(
                region, -2
            ) % n_cores:
                keep = int(round(n * (1 - local_filter)))
                addrs = addrs[:keep]
                n = keep
            counts[index_of[region], core] += n
            streams[region].append(addrs)
    profiler = StackDistanceProfiler(
        chunk_bytes=config.chunk_bytes,
        n_chunks=config.model_chunks,
        sample_shift=2,
    )
    curves: dict[int, MissCurve] = {}
    total_accesses = counts.sum()
    instructions = total_accesses * 1000.0 / workload.apki / n_cores
    for region in region_ids:
        if not streams[region]:
            continue
        lines = np.concatenate(streams[region]) // 64
        regs = np.zeros(len(lines), dtype=np.int32)
        curves[region] = profiler.profile(
            lines, regs, instructions=instructions
        )[0][0]
    core_accesses = counts.sum(axis=0)
    return curves, counts, core_accesses


def evaluate_parallel(
    workload: ParallelWorkload,
    config: SystemConfig,
    scheme: str,
    seed: int = 0,
) -> ParallelResult:
    """Run one configuration of Fig 13."""
    if scheme not in PARALLEL_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; known: {PARALLEL_SCHEMES}")
    geo = config.geometry
    policy = "paws" if scheme.endswith("paws") else "ws"
    schedule = schedule_tasks(
        workload, config.n_cores, policy=policy, geometry=geo, seed=seed
    )
    local_filter = L2_LOCAL_FILTER if policy == "paws" else 0.0
    curves, counts, core_accesses = _profile_regions(
        workload, schedule, config, local_filter
    )
    region_ids = sorted(curves)
    index_of = {r: i for i, r in enumerate(sorted(workload.region_names))}

    # ------------------------------------------------------------------
    # VC layout.
    # ------------------------------------------------------------------
    # vc -> (owner core, member regions)
    if scheme == "whirlpool+paws":
        vcs = {}
        for r in region_ids:
            owner = workload.partition_of_region.get(r, -1)
            owner = owner % config.n_cores if owner >= 0 else 0
            vcs[r] = (owner, [r])
    else:
        vcs = {}
        process_members: list[int] = []
        for r in region_ids:
            row = counts[index_of[r]]
            total = row.sum()
            if total > 0 and row.max() / total >= PRIVATE_THRESHOLD:
                vcs[r] = (int(row.argmax()), [r])
            else:
                process_members.append(r)
        if process_members:
            weights = {
                c: float(counts[:, c].sum()) for c in range(config.n_cores)
            }
            vcs[-1] = (geo.centroid_core(weights), process_members)

    # Per-VC curves and accesses.
    vc_curve: dict[int, MissCurve] = {}
    vc_accesses: dict[int, float] = {}
    for vc, (owner, members) in vcs.items():
        cs = [curves[m] for m in members]
        merged = cs[0]
        for c in cs[1:]:
            merged = merged.merged_over_time(c)  # same window: approximate
        vc_curve[vc] = merged
        vc_accesses[vc] = float(
            sum(counts[index_of[m]].sum() for m in members)
        )

    # ------------------------------------------------------------------
    # Capacity + placement.
    # ------------------------------------------------------------------
    lat = config.latency
    if scheme == "snuca":
        sizes = {vc: float(config.llc_bytes) for vc in vcs}
        placements = {vc: None for vc in vcs}
        per_vc_misses = dict(
            zip(
                sorted(vcs),
                shared_cache_misses(
                    [vc_curve[vc] for vc in sorted(vcs)], config.llc_bytes
                ),
            )
        )
    else:
        vc_list = sorted(vcs)
        cost = []
        for vc in vc_list:
            owner, members = vcs[vc]
            if vc == -1:
                # Shared process VC: its latency-minimizing home is the
                # mesh center, reached from every accessing core.
                reach = geo.central_reach_fn()
            else:
                reach = geo.reach_fn(owner)
            cost.append(
                latency_curve(
                    vc_curve[vc],
                    reach,
                    config.latency_for_core(owner),
                    bypassable=False,
                )
            )
        chunks, __ = partition_cost_curves(
            cost, config.llc_bytes // config.chunk_bytes
        )
        sizes = {
            vc: float(c * config.chunk_bytes) for vc, c in zip(vc_list, chunks)
        }
        # Private/pool VCs: greedy + trading near their owners.  The
        # shared process VC is placed in the central banks (capacity
        # overlap between the two passes is ignored — an acceptable
        # analytical approximation).
        demands = {
            vc: (vcs[vc][0], max(sizes[vc], 1.0), vc_accesses[vc])
            for vc in vc_list
            if vc != -1
        }
        placements = trading_placement(geo, demands)
        if -1 in sizes:
            placements[-1] = geo.central_placement(max(sizes[-1], 1.0))
        per_vc_misses = {
            vc: min(
                vc_curve[vc].hull_curve().misses_at(sizes[vc]),
                vc_curve[vc].accesses,
            )
            for vc in vc_list
        }

    # ------------------------------------------------------------------
    # Per-core stalls and energy.
    # ------------------------------------------------------------------
    energy = EnergyBreakdown()
    core_stalls = np.zeros(config.n_cores)
    total_misses = 0.0
    for vc, (owner, members) in vcs.items():
        placement = placements.get(vc)
        misses = per_vc_misses.get(vc, 0.0)
        acc_total = max(vc_accesses[vc], 1e-9)
        mem_hops = geo.mem_hops(owner)
        penalty = lat.mem_latency + 2 * lat.hop_latency * mem_hops
        for core in range(config.n_cores):
            acc = float(
                sum(counts[index_of[m], core] for m in members)
            )
            if acc <= 0:
                continue
            if scheme == "snuca" or placement is None:
                hops = geo.snuca_avg_hops(core)
            else:
                hops = placement.avg_hops(geo.distances(core))
            access_lat = lat.bank_latency + 2 * lat.hop_latency * hops
            vc_miss_share = misses * acc / acc_total
            core_stalls[core] += acc * access_lat + vc_miss_share * penalty
            energy = (
                energy
                + config.energy.llc_access(hops, acc)
                + config.energy.memory_access(mem_hops, vc_miss_share)
            )
        total_misses += misses

    instr_per_core = core_accesses * 1000.0 / workload.apki
    core_cycles = instr_per_core * config.base_cpi + core_stalls
    return ParallelResult(
        scheme=scheme,
        cycles=float(core_cycles.max()),
        energy=energy,
        schedule=schedule,
        vc_sizes=sizes,
        llc_accesses=float(counts.sum()),
        misses=total_misses,
    )
