"""Trace-driven simulation drivers.

- :mod:`repro.sim.profiling` — per-VC per-interval miss-curve profiling
  with an on-disk cache (profiling is the expensive step; every scheme
  evaluated on the same workload + classification reuses it).
- :mod:`repro.sim.driver` — single-program simulation: profile, then
  step the scheme interval by interval.
- :mod:`repro.sim.multi` — multiprogrammed mixes and weighted speedup
  (Fig 22 methodology).
"""

from repro.sim.driver import default_intervals, default_sample_shift, simulate
from repro.sim.multi import MixResult, simulate_mix, weighted_speedup
from repro.sim.prefetch import apply_stream_prefetcher, prefetch_energy
from repro.sim.profiling import profile_vcs
from repro.sim.sweep import SweepResult, sweep, vary_config

__all__ = [
    "MixResult",
    "apply_stream_prefetcher",
    "prefetch_energy",
    "default_intervals",
    "default_sample_shift",
    "profile_vcs",
    "simulate",
    "simulate_mix",
    "sweep",
    "SweepResult",
    "vary_config",
    "weighted_speedup",
]
