"""Per-VC, per-interval miss-curve profiling with an on-disk cache.

Profiling (stack distances over each VC's access stream) is by far the
most expensive step of the evaluation pipeline, and every scheme that
shares a VC layout reuses the same curves, so results are cached on disk
keyed by a fingerprint of (trace, VC mapping, grid parameters).

Cached profiles live in the content-addressed artifact store
(:mod:`repro.store`), which memory-maps payloads so N campaign workers
share one page-cache copy of each curve set.  Two legacy paths remain:
``$REPRO_PROFILE_CACHE`` pins the original flat-directory cache (tests
and hermetic runs), and the committed ``.profile_cache/`` fixture pile
is still read — never rewritten — when the store misses.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro import obs
from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import StackDistanceProfiler
from repro.store.profiles import FORMAT_VERSION, load_profile
from repro.workloads.trace import Trace

__all__ = ["profile_vcs", "cache_dir", "clear_cache", "relabel_regions"]


def relabel_regions(
    regions: np.ndarray, mapping: dict[int, int]
) -> np.ndarray:
    """Relabel region ids with VC ids via a dense LUT.

    Ids missing from the mapping fall into VC 0 — the convention both
    the in-memory path (:func:`profile_vcs`) and the streaming path
    (:meth:`repro.ingest.stream.StreamingStackProfiler.profile_source`)
    share.
    """
    max_rid = int(regions.max()) if len(regions) else 0
    lut = np.zeros(max_rid + 1, dtype=np.int32)
    for rid, vc in mapping.items():
        if 0 <= rid <= max_rid:
            lut[rid] = vc
    return lut[regions]

_ENV_CACHE = "REPRO_PROFILE_CACHE"

#: On-disk cache version (defined in :mod:`repro.store.profiles`, the
#: payload's single source of truth).  Version 1 fingerprints hashed only
#: a stride-257 sample of the trace, so short traces with equal length and
#: instruction count could collide and serve the wrong curves; version 2
#: hashes the full arrays.  Loads reject any other version (files without
#: the key load as version 1), so stale entries are re-profiled, never
#: misread.
_FORMAT_VERSION = FORMAT_VERSION


def cache_dir() -> Path:
    """The flat legacy cache directory ($REPRO_PROFILE_CACHE).

    With the variable set, this directory *is* the cache (the store is
    not consulted — hermetic runs see exactly the files they seeded).
    Without it, new profiles go to the artifact store and this resolves
    to the committed read-only fixture pile.
    """
    root = os.environ.get(_ENV_CACHE)
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".profile_cache"


def _fixture_dir() -> Path | None:
    """The committed fixture pile, when running from a source checkout.

    Installed packages have no checkout around them — the old
    ``parents[3]``-relative default then pointed into the install prefix
    (e.g. next to ``site-packages``); returning ``None`` routes
    everything to the store instead.
    """
    legacy = Path(__file__).resolve().parents[3] / ".profile_cache"
    return legacy if legacy.is_dir() else None


def _profile_store():
    from repro.store import ArtifactStore

    return ArtifactStore()


def clear_cache() -> int:
    """Delete all cached profiles; returns the number of files removed.

    Clears whichever cache is active: the legacy flat directory when
    ``$REPRO_PROFILE_CACHE`` is set, the store's profile kind otherwise
    (committed fixtures are never deleted).
    """
    n = 0
    if os.environ.get(_ENV_CACHE):
        directory = cache_dir()
        if not directory.exists():
            return 0
        for f in directory.glob("*.npz"):
            f.unlink()
            n += 1
        return n
    store = _profile_store()
    for kind, fingerprint, path in list(store.artifacts("profiles")):
        path.unlink(missing_ok=True)
        store.meta_path(kind, fingerprint).unlink(missing_ok=True)
        n += 1
    return n


def _fingerprint(
    trace: Trace,
    mapping: dict[int, int],
    chunk_bytes: int,
    n_chunks: int,
    n_intervals: int,
    sample_shift: int,
) -> str:
    # blake2b over the *full* arrays: sampling the trace (as version 1 did
    # with lines[::257]) lets distinct traces of equal length collide and
    # silently serve each other's curves.  Hashing ~16 MB/ms-scale is
    # negligible next to profiling itself — but not next to a cache *hit*,
    # so fingerprints are memoized per trace object (trace arrays are
    # immutable by convention; a campaign re-evaluating one workload
    # across schemes and intervals hashes it once).
    memo_key = (
        chunk_bytes,
        n_chunks,
        n_intervals,
        sample_shift,
        tuple(sorted(mapping.items())),
    )
    memo = getattr(trace, "_fingerprint_memo", None)
    if memo is None:
        memo = {}
        trace._fingerprint_memo = memo
    cached = memo.get(memo_key)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(trace.lines, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(trace.regions, dtype=np.int32).tobytes())
    h.update(
        f"v{_FORMAT_VERSION}|{len(trace)}|{trace.instructions}|"
        f"{trace.line_bytes}|{chunk_bytes}|{n_chunks}|"
        f"{n_intervals}|{sample_shift}".encode()
    )
    for rid in sorted(mapping):
        h.update(f"{rid}:{mapping[rid]};".encode())
    memo[memo_key] = h.hexdigest()
    return memo[memo_key]


def profile_vcs(
    trace: Trace,
    mapping: dict[int, int],
    chunk_bytes: int,
    n_chunks: int,
    n_intervals: int = 1,
    sample_shift: int = 0,
    use_cache: bool = True,
) -> dict[int, list[MissCurve]]:
    """Profile a trace into per-VC, per-interval miss curves.

    Args:
        trace: the workload trace.
        mapping: region id -> VC id (the classifier's output).  Regions
            missing from the mapping fall into VC 0.
        chunk_bytes / n_chunks: miss-curve size grid.
        n_intervals: reconfiguration intervals.
        sample_shift: address sampling (see
            :class:`~repro.curves.reuse.StackDistanceProfiler`).
        use_cache: read/write the on-disk cache.
    """
    key = None
    if use_cache:
        key = _fingerprint(
            trace, mapping, chunk_bytes, n_chunks, n_intervals, sample_shift
        )
        cached = _load(key, chunk_bytes, n_intervals)
        if cached is not None:
            obs.counter("profile_cache.hit")
            return cached
        obs.counter("profile_cache.miss")

    # Relabel the trace's regions with VC ids.
    vc_ids = relabel_regions(trace.regions, mapping)
    profiler = StackDistanceProfiler(
        chunk_bytes=chunk_bytes,
        n_chunks=n_chunks,
        line_bytes=trace.line_bytes,
        sample_shift=sample_shift,
    )
    with obs.span(
        "profile.curves", n_intervals=n_intervals, n_chunks=n_chunks
    ):
        curves = profiler.profile(
            trace.lines, vc_ids, trace.instructions, n_intervals=n_intervals
        )
    if use_cache and key is not None:
        _store(
            key,
            curves,
            inputs={
                "n_records": len(trace),
                "instructions": trace.instructions,
                "line_bytes": trace.line_bytes,
                "mapping": {str(r): v for r, v in sorted(mapping.items())},
                "chunk_bytes": chunk_bytes,
                "n_chunks": n_chunks,
                "n_intervals": n_intervals,
                "sample_shift": sample_shift,
            },
        )
    return curves


def _load(
    key: str, chunk_bytes: int, n_intervals: int
) -> dict[int, list[MissCurve]] | None:
    # A stale or partially written file (missing arrays, wrong layout
    # version, truncated index) falls back to re-profiling instead of
    # crashing the run; load_profile absorbs all of that into None.
    if os.environ.get(_ENV_CACHE):
        return load_profile(
            cache_dir() / f"{key}.npz", chunk_bytes, n_intervals
        )
    path = _profile_store().get("profiles", key)
    if path is not None:
        out = load_profile(path, chunk_bytes, n_intervals)
        if out is not None:
            return out
    fixture = _fixture_dir()
    if fixture is not None:
        return load_profile(fixture / f"{key}.npz", chunk_bytes, n_intervals)
    return None


def _store(
    key: str,
    curves: dict[int, list[MissCurve]],
    inputs: dict | None = None,
) -> None:
    if os.environ.get(_ENV_CACHE):
        from repro.store.profiles import encode_payload

        directory = cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        payload = encode_payload(curves)
        # Write-to-temp + atomic rename: parallel campaign workers
        # profiling the same fingerprint must never expose a
        # half-written file.
        tmp = directory / f".{key}.{os.getpid()}.tmp.npz"
        try:
            np.savez_compressed(tmp, **payload)
            os.replace(tmp, directory / f"{key}.npz")
        finally:
            if tmp.exists():
                tmp.unlink()
        return
    from repro.store import provenance_record, publish_profile

    publish_profile(
        _profile_store(),
        key,
        curves,
        provenance=provenance_record(
            "profiles",
            key,
            builder="repro.sim.profiling.profile_vcs",
            inputs=inputs,
        ),
    )
