"""Per-VC, per-interval miss-curve profiling with an on-disk cache.

Profiling (stack distances over each VC's access stream) is by far the
most expensive step of the evaluation pipeline, and every scheme that
shares a VC layout reuses the same curves, so results are cached on disk
keyed by a fingerprint of (trace, VC mapping, grid parameters).
"""

from __future__ import annotations

import hashlib
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.curves.miss_curve import MissCurve
from repro.curves.reuse import StackDistanceProfiler
from repro.workloads.trace import Trace

__all__ = ["profile_vcs", "cache_dir", "clear_cache", "relabel_regions"]


def relabel_regions(
    regions: np.ndarray, mapping: dict[int, int]
) -> np.ndarray:
    """Relabel region ids with VC ids via a dense LUT.

    Ids missing from the mapping fall into VC 0 — the convention both
    the in-memory path (:func:`profile_vcs`) and the streaming path
    (:meth:`repro.ingest.stream.StreamingStackProfiler.profile_source`)
    share.
    """
    max_rid = int(regions.max()) if len(regions) else 0
    lut = np.zeros(max_rid + 1, dtype=np.int32)
    for rid, vc in mapping.items():
        if 0 <= rid <= max_rid:
            lut[rid] = vc
    return lut[regions]

_ENV_CACHE = "REPRO_PROFILE_CACHE"

#: On-disk cache version.  Version 1 fingerprints hashed only a stride-257
#: sample of the trace, so short traces with equal length and instruction
#: count could collide and serve the wrong curves; version 2 hashes the
#: full arrays.  Loads reject any other version (files without the key
#: load as version 1), so stale entries are re-profiled, never misread.
_FORMAT_VERSION = 2


def cache_dir() -> Path:
    """Directory for cached profiles (override with $REPRO_PROFILE_CACHE)."""
    root = os.environ.get(_ENV_CACHE)
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".profile_cache"


def clear_cache() -> int:
    """Delete all cached profiles; returns the number of files removed."""
    directory = cache_dir()
    if not directory.exists():
        return 0
    n = 0
    for f in directory.glob("*.npz"):
        f.unlink()
        n += 1
    return n


def _fingerprint(
    trace: Trace,
    mapping: dict[int, int],
    chunk_bytes: int,
    n_chunks: int,
    n_intervals: int,
    sample_shift: int,
) -> str:
    # blake2b over the *full* arrays: sampling the trace (as version 1 did
    # with lines[::257]) lets distinct traces of equal length collide and
    # silently serve each other's curves.  Hashing ~16 MB/ms-scale is
    # negligible next to profiling itself — but not next to a cache *hit*,
    # so fingerprints are memoized per trace object (trace arrays are
    # immutable by convention; a campaign re-evaluating one workload
    # across schemes and intervals hashes it once).
    memo_key = (
        chunk_bytes,
        n_chunks,
        n_intervals,
        sample_shift,
        tuple(sorted(mapping.items())),
    )
    memo = getattr(trace, "_fingerprint_memo", None)
    if memo is None:
        memo = {}
        trace._fingerprint_memo = memo
    cached = memo.get(memo_key)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(trace.lines, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(trace.regions, dtype=np.int32).tobytes())
    h.update(
        f"v{_FORMAT_VERSION}|{len(trace)}|{trace.instructions}|"
        f"{trace.line_bytes}|{chunk_bytes}|{n_chunks}|"
        f"{n_intervals}|{sample_shift}".encode()
    )
    for rid in sorted(mapping):
        h.update(f"{rid}:{mapping[rid]};".encode())
    memo[memo_key] = h.hexdigest()
    return memo[memo_key]


def profile_vcs(
    trace: Trace,
    mapping: dict[int, int],
    chunk_bytes: int,
    n_chunks: int,
    n_intervals: int = 1,
    sample_shift: int = 0,
    use_cache: bool = True,
) -> dict[int, list[MissCurve]]:
    """Profile a trace into per-VC, per-interval miss curves.

    Args:
        trace: the workload trace.
        mapping: region id -> VC id (the classifier's output).  Regions
            missing from the mapping fall into VC 0.
        chunk_bytes / n_chunks: miss-curve size grid.
        n_intervals: reconfiguration intervals.
        sample_shift: address sampling (see
            :class:`~repro.curves.reuse.StackDistanceProfiler`).
        use_cache: read/write the on-disk cache.
    """
    key = None
    if use_cache:
        key = _fingerprint(
            trace, mapping, chunk_bytes, n_chunks, n_intervals, sample_shift
        )
        cached = _load(key, chunk_bytes, n_intervals)
        if cached is not None:
            return cached

    # Relabel the trace's regions with VC ids.
    vc_ids = relabel_regions(trace.regions, mapping)
    profiler = StackDistanceProfiler(
        chunk_bytes=chunk_bytes,
        n_chunks=n_chunks,
        line_bytes=trace.line_bytes,
        sample_shift=sample_shift,
    )
    curves = profiler.profile(
        trace.lines, vc_ids, trace.instructions, n_intervals=n_intervals
    )
    if use_cache and key is not None:
        _store(key, curves)
    return curves


def _load(
    key: str, chunk_bytes: int, n_intervals: int
) -> dict[int, list[MissCurve]] | None:
    path = cache_dir() / f"{key}.npz"
    if not path.exists():
        return None
    try:
        data = np.load(path)
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    # A stale or partially written file (missing arrays, wrong layout
    # version, truncated index) falls back to re-profiling instead of
    # crashing the run.
    try:
        version = (
            int(data["format_version"]) if "format_version" in data else 1
        )
        if version != _FORMAT_VERSION:
            return None
        out: dict[int, list[MissCurve]] = {}
        vc_ids = data["vc_ids"]
        for i, vc in enumerate(vc_ids.tolist()):
            curves = []
            for t in range(n_intervals):
                curves.append(
                    MissCurve(
                        misses=data[f"m_{i}_{t}"],
                        chunk_bytes=chunk_bytes,
                        accesses=float(data[f"a_{i}"][t]),
                        instructions=float(data[f"i_{i}"][t]),
                    )
                )
            out[int(vc)] = curves
    except (KeyError, IndexError, ValueError, OSError, zlib.error, zipfile.BadZipFile):
        return None
    return out


def _store(key: str, curves: dict[int, list[MissCurve]]) -> None:
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION, dtype=np.int64),
        "vc_ids": np.array(sorted(curves), dtype=np.int64),
    }
    for i, vc in enumerate(sorted(curves)):
        series = curves[vc]
        payload[f"a_{i}"] = np.array([c.accesses for c in series])
        payload[f"i_{i}"] = np.array([c.instructions for c in series])
        for t, c in enumerate(series):
            payload[f"m_{i}_{t}"] = c.misses
    # Write-to-temp + atomic rename: parallel campaign workers profiling
    # the same fingerprint must never expose a half-written file.
    tmp = directory / f".{key}.{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(tmp, **payload)
        os.replace(tmp, directory / f"{key}.npz")
    finally:
        if tmp.exists():
            tmp.unlink()
