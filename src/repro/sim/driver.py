"""Single-program simulation driver.

Profiles the workload once (per VC layout), then steps the scheme
interval by interval.  Like real hardware, the scheme decides interval
``t``'s configuration from the monitors of interval ``t - 1`` — so
adaptation lags phase changes by one reconfiguration, exactly the
dynamics Figs 6/11 rely on.
"""

from __future__ import annotations

from typing import Callable

from repro.nuca.config import SystemConfig
from repro.schemes.base import Scheme, SchemeResult, VCSpec
from repro.schemes.classifiers import Classifier, SingleVCClassifier
from repro.sim.profiling import profile_vcs
from repro.workloads.trace import Workload

__all__ = ["simulate", "default_intervals", "default_sample_shift"]

SchemeFactory = Callable[[SystemConfig, list[VCSpec]], Scheme]


def default_intervals(workload: Workload, config: SystemConfig) -> int:
    """Reconfiguration count: one per epoch, clamped to [8, 48]."""
    n = int(workload.trace.instructions / config.reconfig_instructions)
    return max(8, min(48, n))


def default_sample_shift(workload: Workload) -> int:
    """Address-sampling aggressiveness by trace length."""
    n = len(workload.trace)
    if n < 200_000:
        return 0
    if n < 1_000_000:
        return 2
    if n < 4_000_000:
        return 3
    return 4


def simulate(
    workload: Workload,
    config: SystemConfig,
    scheme_factory: SchemeFactory,
    classifier: Classifier | None = None,
    owner_core: int = 0,
    n_intervals: int | None = None,
    sample_shift: int | None = None,
    use_cache: bool = True,
    engine: str = "batched",
) -> SchemeResult:
    """Run one workload under one scheme.

    Args:
        workload: the program.
        config: chip configuration.
        scheme_factory: ``(config, vcs) -> Scheme``.
        classifier: VC layout; defaults to a single process VC (Jigsaw's
            view).  Pass :class:`~repro.schemes.ManualPoolClassifier` or
            a WhirlTool classifier for Whirlpool.
        owner_core: core the program runs on.
        n_intervals / sample_shift: override the defaults.
        use_cache: reuse cached profiles.
        engine: ``"batched"`` steps the scheme through
            :meth:`~repro.schemes.base.Scheme.step_batch` (accounting
            vectorized across intervals); ``"serial"`` is the retained
            interval-by-interval loop.  Results are identical (pinned by
            the differential tests).

    Returns:
        The accumulated :class:`~repro.schemes.base.SchemeResult`.
    """
    if engine not in ("batched", "serial"):
        raise ValueError(f"unknown engine {engine!r}")
    if classifier is None:
        classifier = SingleVCClassifier()
    if n_intervals is None:
        n_intervals = default_intervals(workload, config)
    if sample_shift is None:
        sample_shift = default_sample_shift(workload)
    mapping, vcs = classifier.classify(workload, owner_core=owner_core)
    curves = profile_vcs(
        workload.trace,
        mapping,
        chunk_bytes=config.chunk_bytes,
        n_chunks=config.model_chunks,
        n_intervals=n_intervals,
        sample_shift=sample_shift,
        use_cache=use_cache,
    )
    scheme = scheme_factory(config, vcs)
    result = SchemeResult(name=scheme.name, base_cpi=config.base_cpi)
    instr_per = workload.trace.instructions / n_intervals
    if engine == "serial":
        for t in range(n_intervals):
            decide = {vc: series[max(t - 1, 0)] for vc, series in curves.items()}
            actual = {vc: series[t] for vc, series in curves.items()}
            result.add(scheme.step(decide, actual, instr_per))
        return result
    decide_series = {
        vc: [series[max(t - 1, 0)] for t in range(n_intervals)]
        for vc, series in curves.items()
    }
    for stats in scheme.step_batch(
        decide_series, curves, instr_per, n_intervals=n_intervals
    ):
        result.add(stats)
    return result
