"""Parameter-sweep utilities for sensitivity studies.

A downstream user's first question is usually "does the conclusion hold
if I change X?"  This module sweeps one configuration axis at a time
(LLC capacity, bank latency, memory latency, mesh dimension, hop
latency) and re-runs a scheme comparison at each point.

The sweep itself is one instantiation of the :mod:`repro.exp` engine: a
(point × scheme) grid of keyed jobs run through an in-memory store.
Because the factories are arbitrary callables the grid runs in-process;
name-based grids that want a process pool and a persistent store go
through :func:`repro.exp.run_campaign` instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.exp.engine import run_jobs
from repro.exp.store import MemoryStore
from repro.nuca.config import SystemConfig
from repro.nuca.geometry import MeshGeometry
from repro.curves.latency import LatencyModel
from repro.schemes.base import SchemeResult
from repro.sim.driver import SchemeFactory, simulate
from repro.workloads.trace import Workload

__all__ = ["SweepResult", "sweep", "vary_config"]


@dataclass
class SweepResult:
    """Results of one sweep.

    Attributes:
        axis: the swept parameter's name.
        points: parameter values.
        results: per point, scheme name -> SchemeResult.
    """

    axis: str
    points: list = field(default_factory=list)
    results: list[dict[str, SchemeResult]] = field(default_factory=list)

    def series(self, scheme: str, metric: str = "cycles") -> list[float]:
        """One scheme's metric across the sweep."""
        return [getattr(r[scheme], metric) for r in self.results]

    def relative_series(
        self, scheme: str, baseline: str, metric: str = "cycles"
    ) -> list[float]:
        """scheme/baseline ratio across the sweep.

        A zero-valued baseline point yields 1.0 when the scheme is also
        zero (both idle) and ``inf`` otherwise, rather than raising.
        """
        out = []
        for r in self.results:
            num = getattr(r[scheme], metric)
            denom = getattr(r[baseline], metric)
            if denom == 0:
                out.append(1.0 if num == 0 else math.inf)
            else:
                out.append(num / denom)
        return out


def vary_config(config: SystemConfig, axis: str, value) -> SystemConfig:
    """A copy of ``config`` with one parameter changed.

    Supported axes: ``mesh_dim``, ``bank_kb``, ``bank_latency``,
    ``hop_latency``, ``mem_latency``, ``base_cpi``.
    """
    geo = config.geometry
    latency = config.latency
    if axis == "mesh_dim":
        geo = MeshGeometry(
            dim=int(value),
            n_cores=geo.n_cores,
            bank_bytes=geo.bank_bytes,
            n_mcus=len(geo.mcu_entries),
        )
    elif axis == "bank_kb":
        geo = MeshGeometry(
            dim=geo.dim,
            n_cores=geo.n_cores,
            bank_bytes=int(value) * 1024,
            n_mcus=len(geo.mcu_entries),
        )
    elif axis in ("bank_latency", "hop_latency", "mem_latency"):
        kwargs = {
            "bank_latency": latency.bank_latency,
            "hop_latency": latency.hop_latency,
            "mem_latency": latency.mem_latency,
            "mem_hops": latency.mem_hops,
        }
        kwargs[axis] = float(value)
        latency = LatencyModel(**kwargs)
    elif axis == "base_cpi":
        pass  # handled below
    else:
        raise ValueError(f"unknown sweep axis {axis!r}")
    return SystemConfig(
        name=f"{config.name} [{axis}={value}]",
        geometry=geo,
        latency=latency,
        energy=config.energy,
        line_bytes=config.line_bytes,
        l2_bytes=config.l2_bytes,
        base_cpi=float(value) if axis == "base_cpi" else config.base_cpi,
        reconfig_instructions=config.reconfig_instructions,
        chunk_bytes=config.chunk_bytes,
    )


def sweep(
    workload: Workload,
    config: SystemConfig,
    axis: str,
    values: list,
    factories: dict[str, SchemeFactory],
    classifiers: dict[str, Callable] | None = None,
    **simulate_kwargs,
) -> SweepResult:
    """Run several schemes across one configuration axis.

    Args:
        workload: the program.
        config: base configuration.
        axis: parameter to vary (see :func:`vary_config`).
        values: parameter values.
        factories: scheme name -> factory.
        classifiers: optional scheme name -> classifier.
        simulate_kwargs: forwarded to :func:`repro.sim.simulate`.
    """
    classifiers = classifiers or {}
    # Varying the config up front preserves the historical behaviour of
    # rejecting an unknown axis even when no schemes are requested.
    configs = [vary_config(config, axis, value) for value in values]
    jobs = [
        _SweepJob(axis=axis, index=i, scheme=name)
        for i in range(len(configs))
        for name in factories
    ]

    def execute(job: _SweepJob) -> SchemeResult:
        return simulate(
            workload,
            configs[job.index],
            factories[job.scheme],
            classifier=classifiers.get(job.scheme),
            **simulate_kwargs,
        )

    store = MemoryStore()
    run_jobs(jobs, execute, store=store, workers=1)
    out = SweepResult(axis=axis, points=list(values))
    for i in range(len(configs)):
        out.results.append(
            {
                name: store.get(_SweepJob(axis=axis, index=i, scheme=name).key())
                for name in factories
            }
        )
    return out


@dataclass(frozen=True)
class _SweepJob:
    """One (sweep point, scheme) cell, keyed by position in the grid."""

    axis: str
    index: int
    scheme: str

    def key(self) -> str:
        return f"{self.axis}[{self.index}]:{self.scheme}"
