"""Reading event logs back: replay, rollups, and the ``obs report`` text.

Everything here is pure post-processing over the ``.events.jsonl``
sidecar (or any list of event records): no live observability state is
touched, so reports can run long after — or on a different machine
than — the campaign that produced the log.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.core import MetricRegistry

__all__ = [
    "format_report",
    "load_events",
    "percentile",
    "replay_metrics",
    "rollup",
    "span_durations",
]


def load_events(path: str | Path) -> list[dict]:
    """Parse an events sidecar, skipping corrupt lines.

    Crashed workers (``os._exit`` fault injection) can tear the final
    line of a concurrently-appended log; a replay must survive that,
    so undecodable lines are dropped rather than raised.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict):
                events.append(rec)
    return events


def replay_metrics(events: Iterable[dict]) -> MetricRegistry:
    """Rebuild a :class:`MetricRegistry` from metric event records.

    Feeding a log straight back through yields totals equal to the
    in-memory registry the run maintained — the Hypothesis suite pins
    this equivalence.
    """
    registry = MetricRegistry()
    for rec in events:
        if rec.get("kind") != "metric":
            continue
        registry.apply(
            str(rec.get("metric")),
            str(rec.get("name")),
            float(rec.get("value", 0.0)),
        )
    return registry


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float error
    return ordered[int(rank) - 1]


def span_durations(events: Iterable[dict]) -> dict[str, list[float]]:
    """Completed-span durations grouped by span name."""
    out: dict[str, list[float]] = {}
    for rec in events:
        if rec.get("kind") != "span-end":
            continue
        out.setdefault(str(rec.get("name", "?")), []).append(
            float(rec.get("dur_s", 0.0))
        )
    return out


def _job_fields(rec: dict) -> dict:
    fields = rec.get("fields")
    return fields if isinstance(fields, dict) else {}


def rollup(events: list[dict]) -> dict[str, Any]:
    """The aggregate view behind ``obs report`` and ``campaign status``.

    Returns a JSON-friendly dict with span stats, job outcomes (from
    the engine's lifecycle events), per-scheme duration percentiles,
    retry storms, cache ratios, and injected faults.
    """
    spans = span_durations(events)
    span_stats = {
        name: {
            "count": len(durs),
            "total_s": round(sum(durs), 6),
            "p50_s": round(percentile(durs, 50), 6),
            "p95_s": round(percentile(durs, 95), 6),
            "max_s": round(max(durs), 6),
        }
        for name, durs in spans.items()
    }

    registry = replay_metrics(events)

    completed = 0
    retried = 0
    quarantined = 0
    retries_by_key: dict[str, int] = {}
    scheme_durs: dict[str, list[float]] = {}
    faults: list[dict] = []
    for rec in events:
        kind = rec.get("kind")
        name = rec.get("name")
        fields = _job_fields(rec)
        if kind == "event":
            if name == "job.retry":
                retried += 1
                key = str(fields.get("key", "?"))
                retries_by_key[key] = retries_by_key.get(key, 0) + 1
            elif name == "job.quarantined":
                quarantined += 1
            elif name == "job.completed":
                completed += 1
                scheme = str(fields.get("scheme") or "?")
                scheme_durs.setdefault(scheme, []).append(
                    float(fields.get("elapsed_s", 0.0))
                )
            elif name == "fault.injected":
                faults.append(fields)

    schemes = {
        scheme: {
            "jobs": len(durs),
            "p50_s": round(percentile(durs, 50), 6),
            "p95_s": round(percentile(durs, 95), 6),
        }
        for scheme, durs in sorted(scheme_durs.items())
    }

    retry_storms = [
        {"key": key, "retries": n}
        for key, n in sorted(
            retries_by_key.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if n >= 2
    ]

    counters = registry.counters
    cache_ratios: dict[str, float] = {}
    for base, hit_name, miss_name in (
        ("profile_cache", "profile_cache.hit", "profile_cache.miss"),
        ("store_mmap", "store.load.mmap", "store.load.npz_fallback"),
    ):
        hits = counters.get(hit_name, 0.0)
        misses = counters.get(miss_name, 0.0)
        if hits + misses > 0:
            cache_ratios[base] = round(hits / (hits + misses), 4)

    return {
        "events": len(events),
        "spans": span_stats,
        "jobs": {
            "completed": completed,
            "retried": retried,
            "quarantined": quarantined,
        },
        "schemes": schemes,
        "retry_storms": retry_storms,
        "cache_hit_ratios": cache_ratios,
        "faults": {"injected": len(faults)},
        "metrics": registry.snapshot(),
    }


def format_report(summary: dict[str, Any], top: int = 10) -> str:
    """Render a rollup as the ``obs report --format text`` output."""
    lines: list[str] = []
    jobs = summary.get("jobs", {})
    lines.append(
        "events: {n}  jobs: {c} completed, {r} retried, {q} quarantined".format(
            n=summary.get("events", 0),
            c=jobs.get("completed", 0),
            r=jobs.get("retried", 0),
            q=jobs.get("quarantined", 0),
        )
    )
    faults = summary.get("faults", {}).get("injected", 0)
    if faults:
        lines.append(f"faults injected: {faults}")

    schemes = summary.get("schemes", {})
    if schemes:
        lines.append("per-scheme job duration:")
        for scheme, stats in schemes.items():
            lines.append(
                f"  {scheme}: {stats['jobs']} jobs, "
                f"p50 {stats['p50_s']:.4f}s, p95 {stats['p95_s']:.4f}s"
            )

    ratios = summary.get("cache_hit_ratios", {})
    if ratios:
        lines.append("cache hit ratios:")
        for name, ratio in sorted(ratios.items()):
            lines.append(f"  {name}: {ratio:.1%}")

    storms = summary.get("retry_storms", [])
    if storms:
        lines.append("retry storms (>=2 retries):")
        for storm in storms[:top]:
            lines.append(f"  {storm['key']}: {storm['retries']} retries")

    spans = summary.get("spans", {})
    if spans:
        lines.append(f"slowest spans (top {top} by total time):")
        ranked = sorted(
            spans.items(), key=lambda kv: -float(kv[1]["total_s"])
        )
        for name, stats in ranked[:top]:
            lines.append(
                f"  {name}: {stats['count']}x, total {stats['total_s']:.4f}s, "
                f"p95 {stats['p95_s']:.4f}s, max {stats['max_s']:.4f}s"
            )
    return "\n".join(lines)
