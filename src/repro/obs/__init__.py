"""repro.obs — structured tracing and metrics for the whole pipeline.

Usage sketch::

    from repro import obs

    with obs.session(path="campaign.events.jsonl"):
        with obs.span("engine.job", key=key):
            obs.counter("jobs.completed")

All helpers are true no-ops while observability is disabled (the
default); see :mod:`repro.obs.core` for the span model and
:mod:`repro.obs.report` for reading event logs back.
"""

from repro.obs.core import (
    ENV_VAR,
    MetricRegistry,
    ObsState,
    SpanHandle,
    adopt,
    counter,
    current_context,
    disable,
    enable,
    enabled,
    event,
    gauge,
    get_registry,
    histogram,
    session,
    span,
    start_span,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    Sink,
    StderrSummarySink,
    events_path_for,
)

__all__ = [
    "ENV_VAR",
    "JsonlSink",
    "MemorySink",
    "MetricRegistry",
    "ObsState",
    "Sink",
    "SpanHandle",
    "StderrSummarySink",
    "adopt",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "event",
    "events_path_for",
    "gauge",
    "get_registry",
    "histogram",
    "session",
    "span",
    "start_span",
]
