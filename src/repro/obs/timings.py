"""One shared writer for the perf-suite timings artifacts.

The six ``benchmarks/test_perf_*`` modules used to hand-roll the same
load-merge-write JSON dance with six subtly different shapes.  They
now all call :func:`record_timings`, which writes one schema —

.. code-block:: json

    {
      "schema": "repro-obs-timings/1",
      "entries": {
        "<name>": {
          "metrics": {"<metric>": {"value": 1.5, "unit": "s"}},
          "gate": "speedup >= 5.0"
        }
      }
    }

— into the same gitignored per-suite filenames CI already uploads
(``perf_store_timings.json`` etc.), so the artifact plumbing is
untouched.  Entries merge across test runs within a file (each test
records its own named entry); a corrupt or pre-schema file is simply
replaced.  When observability is enabled each metric is also emitted
as a ``perf.timing`` event, so a traced benchmark run lands its
numbers in the events sidecar too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Union

from repro.obs import core as obs

__all__ = ["SCHEMA", "infer_unit", "record_timings"]

SCHEMA = "repro-obs-timings/1"

#: A metric is either a bare number (unit defaults to seconds) or an
#: explicit ``(value, unit)`` pair.
MetricValue = Union[float, tuple[float, str]]


def infer_unit(metric: str) -> str:
    """The unit a perf-suite metric name conventionally carries.

    The perf suites predate the shared schema and encode units in
    metric names (``*_s``, ``*_mb``, ``us_per_*``, ``speedup``); this
    keeps those names stable while the schema gains explicit units.
    """
    if metric.startswith("us_per") or metric.endswith("_us"):
        return "us"
    if metric.endswith("per_s"):
        return "MB/s" if "mb" in metric else "/s"
    if metric.endswith("_s") or metric == "seconds":
        return "s"
    if metric.endswith("_mb") or metric == "mb":
        return "MB"
    if metric == "speedup" or "ratio" in metric:
        return "x"
    return ""


def record_timings(
    path: str | Path,
    name: str,
    metrics: Mapping[str, MetricValue],
    gate: str | None = None,
) -> dict:
    """Merge one named entry into a timings artifact at ``path``.

    Args:
        path: the per-suite JSON artifact (existing filename kept).
        name: entry key, e.g. ``"smoke_48x16"``.
        metrics: metric name -> value (seconds) or ``(value, unit)``.
        gate: human-readable statement of the CI gate this entry is
            checked against, e.g. ``"speedup >= 5.0"``; None if the
            entry is informational only.

    Returns the entry dict that was written (mainly for tests).
    """
    artifact = Path(path)
    data: dict = {}
    if artifact.exists():
        try:
            loaded = json.loads(artifact.read_text())
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict) and loaded.get("schema") == SCHEMA:
            data = loaded
    entries = data.setdefault("entries", {})
    data["schema"] = SCHEMA

    entry: dict = {"metrics": {}}
    for metric, value in metrics.items():
        if isinstance(value, tuple):
            raw, unit = value
        else:
            raw, unit = value, "s"
        entry["metrics"][metric] = {"value": round(float(raw), 6), "unit": unit}
        obs.event(
            "perf.timing",
            entry=name,
            metric=metric,
            value=round(float(raw), 6),
            unit=unit,
        )
    if gate is not None:
        entry["gate"] = gate
    entries[name] = entry

    artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entry
