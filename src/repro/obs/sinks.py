"""Event sinks: where emitted observability records go.

Three sinks cover the repo's needs:

- :class:`JsonlSink` — the campaign sidecar (``<stem>.events.jsonl``),
  append-only in the house style (one flushed JSON line per event, like
  :class:`~repro.exp.store.ResultStore` and the quarantine sidecar).
  Every record is written and flushed immediately, so an ``os._exit``
  fault-injection crash still leaves its last events on disk — that is
  what makes chaos runs reconstructable from the log.
- :class:`MemorySink` — an in-process list, for tests and for replay
  equality checks against the :class:`~repro.obs.core.MetricRegistry`.
- :class:`StderrSummarySink` — an opt-in live summary: counts events as
  they pass and prints an aggregate table to stderr on close.

Multiple processes may append to one ``JsonlSink`` path concurrently
(the engine's pool workers adopt the supervisor's sink path); each
event is a single short ``write`` of a full line in append mode, which
POSIX appends keep un-torn in practice, and the reader side
(:func:`repro.obs.report.load_events`) skips any corrupt line rather
than failing the replay.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol

__all__ = [
    "JsonlSink",
    "MemorySink",
    "Sink",
    "StderrSummarySink",
    "events_path_for",
]


def events_path_for(store_path: str | Path) -> Path:
    """The events sidecar for a ResultStore path (``s.jsonl`` -> ``s.events.jsonl``)."""
    path = Path(store_path)
    return path.with_name(f"{path.stem}.events.jsonl")


class Sink(Protocol):
    """Anything that can receive emitted observability records."""

    def emit(self, record: dict) -> None:
        """Deliver one event record."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink:
    """Collect events in a list (tests, replay-equality checks)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, record: dict) -> None:
        self.events.append(record)

    def close(self) -> None:
        return None


class JsonlSink:
    """Append events to a JSON-lines file, one flushed line per event."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def emit(self, record: dict) -> None:
        fh = self._fh
        if fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fh = self._fh = open(self.path, "a", encoding="utf-8")
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush per event: a crashed (os._exit) worker must leave every
        # event it emitted on disk, or the chaos log cannot replay.
        fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None


class StderrSummarySink:
    """Aggregate events live and print a summary on close (opt-in)."""

    def __init__(self, out: IO[str] | None = None) -> None:
        self.out = out if out is not None else sys.stderr
        self._events = 0
        self._span_s: dict[str, tuple[int, float]] = {}
        self._counters: dict[str, float] = {}
        self._faults = 0

    def emit(self, record: dict) -> None:
        self._events += 1
        kind = record.get("kind")
        name = str(record.get("name", "?"))
        if kind == "span-end":
            n, total = self._span_s.get(name, (0, 0.0))
            self._span_s[name] = (n + 1, total + float(record.get("dur_s", 0.0)))
        elif kind == "metric" and record.get("metric") == "counter":
            self._counters[name] = self._counters.get(name, 0.0) + float(
                record.get("value", 0.0)
            )
        elif kind == "event" and name == "fault.injected":
            self._faults += 1

    def close(self) -> None:
        out = self.out
        print(f"[obs] {self._events} events", file=out)
        for name, (n, total) in sorted(
            self._span_s.items(), key=lambda kv: -kv[1][1]
        ):
            print(
                f"[obs]   span {name}: {n}x, {total:.3f}s total", file=out
            )
        for name, value in sorted(self._counters.items()):
            print(f"[obs]   counter {name}: {value:g}", file=out)
        if self._faults:
            print(f"[obs]   faults injected: {self._faults}", file=out)
