"""Structured tracing and metrics: spans, events, and the registry.

The module keeps exactly one piece of global state — the active
:class:`ObsState`, or ``None`` when observability is disabled — and
every public helper starts with that ``None`` check, so the disabled
path is a true no-op costing well under a microsecond per call (the
``benchmarks/test_perf_obs.py`` smoke gates it).  Nothing in the hot
simulation kernels calls into this module; instrumentation lives at
subsystem boundaries (job lifecycle, cache reads, chunk decodes, epoch
seals) where one event amortizes over milliseconds of work.

Span model
----------
A *trace* is one logical run (a campaign, a watch session) identified
by a random ``trace`` id; a *span* is one timed operation within it.
``with obs.span("engine.job", key=...)`` emits paired ``span-start`` /
``span-end`` records carrying the span id, its parent span id, and the
monotonic duration; spans nest through a per-state stack.  For
operations that start and finish in different stack frames (a job
submitted to a pool, completed in a wait loop), :func:`start_span`
returns a handle ended explicitly — those do not join the nesting
stack, but workers parent under them across the process boundary.

Cross-process propagation
-------------------------
:func:`current_context` captures ``(trace id, parent span id, sidecar
path)`` as a picklable dict; the engine ships it with each pool
submission and the worker wraps execution in :func:`adopt`, which
binds a process-local state to the same sidecar file — so worker-side
spans nest under their job's submit span in the one merged event log.

Enabling
--------
Disabled by default.  Programmatic: :func:`enable` / :func:`disable`
or the scoped :func:`session`.  Environment: ``$REPRO_OBS`` set to a
path enables a :class:`~repro.obs.sinks.JsonlSink` there at import
time, ``stderr`` (or ``1``) enables the live summary, ``0`` (or
unset) leaves observability off and additionally vetoes the campaign
runner's default events sidecar.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Iterator, Mapping

from repro.obs.sinks import JsonlSink, Sink, StderrSummarySink

__all__ = [
    "ENV_VAR",
    "MetricRegistry",
    "ObsState",
    "SpanHandle",
    "adopt",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "get_registry",
    "histogram",
    "session",
    "span",
    "start_span",
]

#: Environment switch: a path (JSONL sink), ``stderr``/``1`` (live
#: summary), ``0``/unset (off; ``0`` also vetoes default sidecars).
ENV_VAR = "REPRO_OBS"

#: Histogram bucket for non-positive observations (log buckets only
#: cover v > 0).
_ZERO_BUCKET = -(1 << 30)


def _log_bucket(value: float) -> int:
    """The log2 bucket index holding ``value``: ``2**b <= v < 2**(b+1)``."""
    if value <= 0 or value != value:  # non-positive or NaN
        return _ZERO_BUCKET
    if math.isinf(value):
        return 1 << 30
    return math.frexp(value)[1] - 1


class MetricRegistry:
    """Process-local counters, gauges, and log-bucketed histograms.

    Every mutation has an exactly-equivalent event record, so replaying
    an event log through :func:`repro.obs.report.replay_metrics` yields
    a registry equal to the live one — the property the Hypothesis
    suite pins.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[int, int]] = {}

    def count(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Count ``value`` into histogram ``name``'s log2 bucket."""
        buckets = self.histograms.setdefault(name, {})
        b = _log_bucket(value)
        buckets[b] = buckets.get(b, 0) + 1

    def apply(self, metric: str, name: str, value: float) -> None:
        """Apply one metric event record (the replay entry point)."""
        if metric == "counter":
            self.count(name, value)
        elif metric == "gauge":
            self.set_gauge(name, value)
        elif metric == "hist":
            self.observe(name, value)
        else:
            raise ValueError(f"unknown metric kind {metric!r}")

    def snapshot(self) -> dict[str, Any]:
        """A JSON-friendly copy of every metric (stable key order)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {str(b): n for b, n in sorted(buckets.items())}
                for name, buckets in sorted(self.histograms.items())
            },
        }


class ObsState:
    """The active configuration: sinks, registry, trace id, span stack."""

    def __init__(
        self,
        sinks: list[Sink],
        registry: MetricRegistry | None = None,
        trace_id: str | None = None,
        parent: str | None = None,
        owns_sinks: bool = True,
    ) -> None:
        self.sinks = list(sinks)
        self.registry = registry if registry is not None else MetricRegistry()
        self.trace_id = (
            trace_id if trace_id is not None else os.urandom(8).hex()
        )
        #: Adopted cross-process parent: the span local roots nest under.
        self.parent = parent
        self.stack: list[str] = []
        self.owns_sinks = owns_sinks
        self._pid = os.getpid()
        self._next_span = 0

    def new_span_id(self) -> str:
        """A process-unique span id (pid-tagged counter)."""
        self._next_span += 1
        return f"{self._pid:x}-{self._next_span:x}"

    def current_span(self) -> str | None:
        """The innermost open nested span, else the adopted parent."""
        return self.stack[-1] if self.stack else self.parent

    def emit(self, record: dict) -> None:
        """Deliver one record to every sink."""
        for sink in self.sinks:
            sink.emit(record)

    def record(
        self, kind: str, name: str, fields: dict[str, Any] | None = None
    ) -> dict:
        """A base event record stamped with time/trace/current-span."""
        rec: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "trace": self.trace_id,
            "kind": kind,
            "name": name,
        }
        span_id = self.current_span()
        if span_id is not None:
            rec["span"] = span_id
        if fields:
            rec["fields"] = fields
        return rec

    def close(self) -> None:
        """Close owned sinks (adopted worker states keep theirs cached)."""
        if self.owns_sinks:
            for sink in self.sinks:
                sink.close()


# The one global: None == disabled == every helper is a no-op.
_STATE: ObsState | None = None

# Worker-side sink cache: adopting N jobs against one sidecar path must
# not open N file handles.
_ADOPTED_SINKS: dict[str, JsonlSink] = {}


def enabled() -> bool:
    """Whether observability is currently on."""
    return _STATE is not None


def get_registry() -> MetricRegistry | None:
    """The active registry, or None when disabled."""
    state = _STATE
    return state.registry if state is not None else None


def enable(
    sinks: list[Sink] | None = None,
    path: str | os.PathLike[str] | None = None,
    registry: MetricRegistry | None = None,
    trace_id: str | None = None,
    parent: str | None = None,
    stderr_summary: bool = False,
) -> ObsState:
    """Turn observability on (replacing any active state).

    Args:
        sinks: explicit sink list (not closed by :func:`disable` —
            the caller owns them — unless created here).
        path: convenience: append events to this JSONL file.
        registry: metric registry to mutate (default: a fresh one).
        trace_id / parent: adopt an existing trace instead of starting
            a new one (cross-process propagation).
        stderr_summary: add the live stderr summary sink.
    """
    global _STATE
    if _STATE is not None:
        disable()
    owned: list[Sink] = []
    caller_sinks = list(sinks) if sinks else []
    if path is not None:
        owned.append(JsonlSink(path))
    if stderr_summary:
        owned.append(StderrSummarySink())
    state = ObsState(
        caller_sinks + owned,
        registry=registry,
        trace_id=trace_id,
        parent=parent,
        owns_sinks=False,
    )
    # Only sinks this call created are closed on disable.
    state._owned_sinks = owned  # type: ignore[attr-defined]
    _STATE = state
    return state


def disable() -> None:
    """Turn observability off, closing sinks :func:`enable` created."""
    global _STATE
    state = _STATE
    _STATE = None
    if state is not None:
        for sink in getattr(state, "_owned_sinks", []):
            sink.close()


class session:
    """Scoped enablement: ``with obs.session(path=...):`` — restores on exit.

    Nested sessions are pass-throughs: when observability is already
    enabled the outer configuration (and its sidecar) stays active, so
    a campaign launched inside a user-level session logs into the
    user's trace rather than forking its own.  ``$REPRO_OBS=0`` vetoes
    the session entirely (the caller's default sidecar stays unwritten).
    """

    def __init__(
        self,
        sinks: list[Sink] | None = None,
        path: str | os.PathLike[str] | None = None,
        registry: MetricRegistry | None = None,
        stderr_summary: bool = False,
    ) -> None:
        self._sinks = sinks
        self._path = path
        self._registry = registry
        self._stderr = stderr_summary
        self._activated = False

    def __enter__(self) -> ObsState | None:
        if _STATE is not None or os.environ.get(ENV_VAR) == "0":
            return _STATE
        self._activated = True
        return enable(
            sinks=self._sinks,
            path=self._path,
            registry=self._registry,
            stderr_summary=self._stderr,
        )

    def __exit__(self, *exc: object) -> None:
        if self._activated:
            disable()


class SpanHandle:
    """An explicitly-ended span (pool submissions; see :func:`start_span`)."""

    __slots__ = ("_state", "name", "span_id", "fields", "_t0", "_ended")

    def __init__(
        self, state: ObsState, name: str, fields: dict[str, Any]
    ) -> None:
        self._state = state
        self.name = name
        self.fields = fields
        self.span_id = state.new_span_id()
        self._ended = False
        rec = state.record("span-start", name, fields or None)
        rec["span"] = self.span_id
        parent = state.current_span()
        if parent is not None:
            rec["parent"] = parent
        self._t0 = time.perf_counter()
        state.emit(rec)

    def note(self, **fields: Any) -> None:
        """Attach fields to the eventual ``span-end`` record."""
        self.fields.update(fields)

    def end(self, **fields: Any) -> None:
        """Emit the ``span-end`` (idempotent; later calls are ignored)."""
        if self._ended:
            return
        self._ended = True
        dur = time.perf_counter() - self._t0
        if fields:
            self.fields.update(fields)
        state = self._state
        rec = state.record("span-end", self.name, self.fields or None)
        rec["span"] = self.span_id
        rec["dur_s"] = round(dur, 9)
        state.emit(rec)


class _Span:
    """The ``with obs.span(...)`` context manager (nests via the stack)."""

    __slots__ = ("_state", "name", "fields", "span_id", "_t0")

    def __init__(
        self, state: ObsState, name: str, fields: dict[str, Any]
    ) -> None:
        self._state = state
        self.name = name
        self.fields = fields
        self.span_id = ""
        self._t0 = 0.0

    def note(self, **fields: Any) -> None:
        """Attach fields to the eventual ``span-end`` record."""
        self.fields.update(fields)

    def __enter__(self) -> "_Span":
        state = self._state
        self.span_id = state.new_span_id()
        rec = state.record("span-start", self.name, self.fields or None)
        parent = state.current_span()
        rec["span"] = self.span_id
        if parent is not None:
            rec["parent"] = parent
        state.stack.append(self.span_id)
        self._t0 = time.perf_counter()
        state.emit(rec)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        dur = time.perf_counter() - self._t0
        state = self._state
        if state.stack and state.stack[-1] == self.span_id:
            state.stack.pop()
        if exc is not None:
            self.fields["error"] = repr(exc)
        rec = state.record("span-end", self.name, self.fields or None)
        rec["span"] = self.span_id
        rec["dur_s"] = round(dur, 9)
        state.emit(rec)
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()
    span_id = ""

    def note(self, **fields: Any) -> None:
        return None

    def end(self, **fields: Any) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


def span(name: str, **fields: Any) -> Any:
    """A timed, nested span; use as ``with obs.span("name", k=v):``.

    The lint rule ``obs-span-pairing`` enforces the ``with`` form —
    a bare call would never emit its ``span-end``.
    """
    state = _STATE
    if state is None:
        return _NOOP_SPAN
    return _Span(state, name, fields)


def start_span(name: str, **fields: Any) -> Any:
    """An explicitly-ended span for submit/complete split across frames.

    Returns a :class:`SpanHandle` (or a no-op when disabled); the
    caller must invoke ``.end()`` exactly once.  Unlike :func:`span`,
    the handle does not join the nesting stack — it is the parent that
    cross-process workers adopt, not a local enclosing scope.
    """
    state = _STATE
    if state is None:
        return _NOOP_SPAN
    return SpanHandle(state, name, fields)


def event(name: str, **fields: Any) -> None:
    """Emit one point-in-time event record."""
    state = _STATE
    if state is None:
        return
    state.emit(state.record("event", name, fields or None))


def _metric(metric: str, name: str, value: float) -> None:
    state = _STATE
    if state is None:
        return
    state.registry.apply(metric, name, value)
    rec = state.record("metric", name)
    rec["metric"] = metric
    rec["value"] = value
    state.emit(rec)


def counter(name: str, n: float = 1.0) -> None:
    """Increment a counter (and emit its metric event)."""
    if _STATE is None:
        return
    _metric("counter", name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge (and emit its metric event)."""
    if _STATE is None:
        return
    _metric("gauge", name, value)


def histogram(name: str, value: float) -> None:
    """Observe a value into a log-bucketed histogram (and emit it)."""
    if _STATE is None:
        return
    _metric("hist", name, value)


def current_context(parent: str | None = None) -> dict[str, Any] | None:
    """A picklable capture of the active trace for pool workers.

    ``None`` when disabled (workers then stay dark).  The sidecar path
    is included only for :class:`~repro.obs.sinks.JsonlSink` sinks —
    in-memory sinks cannot cross a process boundary.  ``parent``
    overrides the nesting parent: the engine passes its submit-span id
    so worker spans attach to the right job even though
    :class:`SpanHandle` spans never join the local stack.
    """
    state = _STATE
    if state is None:
        return None
    path: str | None = None
    for sink in state.sinks:
        if isinstance(sink, JsonlSink):
            path = str(sink.path)
            break
    return {
        "trace": state.trace_id,
        "parent": parent if parent is not None else state.current_span(),
        "path": path,
    }


class adopt:
    """Worker-side: bind to a supervisor's trace for one job.

    ``with obs.adopt(ctx):`` where ``ctx`` is the dict
    :func:`current_context` produced in the submitting process.  A
    ``None`` context — or a context with no sidecar path — leaves the
    current (usually disabled) state untouched, so the serial engine
    path and unobserved pools pay nothing.  A real context always
    installs a fresh state, even over an enabled one: fork-started
    workers inherit the supervisor's state (wrong parent span, stale
    pid), and a ``$REPRO_OBS`` bootstrap in a spawn-started worker has
    the wrong trace id — the supervisor's context wins in both cases.
    Sinks are cached per path: a worker executing many jobs appends
    through one file handle.
    """

    def __init__(self, ctx: Mapping[str, Any] | None) -> None:
        self._ctx = ctx
        self._installed = False
        self._prev: ObsState | None = None

    def __enter__(self) -> ObsState | None:
        global _STATE
        ctx = self._ctx
        if ctx is None:
            return _STATE
        path = ctx.get("path")
        if path is None:
            return _STATE
        sink = _ADOPTED_SINKS.get(path)
        if sink is None:
            sink = _ADOPTED_SINKS[path] = JsonlSink(path)
        self._prev = _STATE
        self._installed = True
        _STATE = ObsState(
            [sink],
            trace_id=str(ctx.get("trace")),
            parent=ctx.get("parent"),
            owns_sinks=False,
        )
        return _STATE

    def __exit__(self, *exc: object) -> None:
        if self._installed:
            global _STATE
            _STATE = self._prev
            self._installed = False


def _bootstrap_env() -> None:
    """Honour ``$REPRO_OBS`` at import (workers inherit the variable)."""
    spec = os.environ.get(ENV_VAR)
    if not spec or spec == "0":
        return
    if spec in ("1", "stderr"):
        enable(stderr_summary=True)
    else:
        enable(path=spec)


def _iter_noop() -> Iterator[None]:  # pragma: no cover - typing helper
    yield None


_bootstrap_env()
