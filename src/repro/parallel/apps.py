"""The six parallel applications of Fig 13.

Data is partitioned evenly among the 16 cores (one region = one
partition = one Whirlpool pool); graph inputs are partitioned with the
METIS-substitute partitioner to minimize edge cut, as the paper does.
Remote accesses (to other partitions' regions) come from the real
structure of each algorithm: merge partners, FFT butterflies, cut edges.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.graphs import partition_graph, rmat_graph
from repro.parallel.task import ParallelWorkload, Task

__all__ = ["PARALLEL_APPS", "build_parallel_workload"]

_MB = 1 << 20

#: Bytes per partition region (per-core data), by scale.
_PART_BYTES = {"train": 512 * 1024, "small": 512 * 1024,
               "ref": int(1.6 * _MB), "large": int(1.6 * _MB)}

#: Region base addresses are spaced well apart.
_REGION_SPACING = 1 << 32


def _region_base(p: int) -> int:
    return (p + 1) * _REGION_SPACING


def _local_stream(
    rng: np.random.Generator, p: int, part_bytes: int, count: int, kind: str
) -> np.ndarray:
    """Addresses within partition ``p``'s region."""
    n_lines = part_bytes // 64
    if kind == "scan":
        idx = np.arange(count, dtype=np.int64) % n_lines
    else:
        idx = rng.integers(0, n_lines, size=count, dtype=np.int64)
    return _region_base(p) + idx * 64


def _make_regions(n_parts: int) -> tuple[dict[int, str], dict[int, int]]:
    names = {p: f"part{p:02d}" for p in range(n_parts)}
    parts = {p: p for p in range(n_parts)}
    return names, parts


def build_mergesort(
    scale: str = "ref", seed: int = 0, n_partitions: int = 16
) -> ParallelWorkload:
    """Parallel mergesort: local sort tasks, then cross-partition merges."""
    part_bytes = _PART_BYTES[scale]
    rng = np.random.default_rng(seed)
    names, parts = _make_regions(n_partitions)
    tasks = []
    chunk = part_bytes // 64 // 4  # accesses per task ~ quarter region
    # Phase 0: local sorts (several passes per partition).
    for p in range(n_partitions):
        for __ in range(4):
            tasks.append(
                Task(
                    home=p,
                    phase=0,
                    streams={p: _local_stream(rng, p, part_bytes, 2 * chunk, "scan")},
                )
            )
    # Phases 1..log2: merges with partners at growing distance.
    phase = 1
    stride = 1
    while stride < n_partitions:
        for p in range(0, n_partitions, 2 * stride):
            q = p + stride
            tasks.append(
                Task(
                    home=p,
                    phase=phase,
                    streams={
                        p: _local_stream(rng, p, part_bytes, 2 * chunk, "scan"),
                        q: _local_stream(rng, q, part_bytes, 2 * chunk, "scan"),
                    },
                )
            )
        stride *= 2
        phase += 1
    return ParallelWorkload(
        name="mergesort", tasks=tasks, region_names=names,
        partition_of_region=parts, n_partitions=n_partitions, apki=26.0,
    )


def build_fft(
    scale: str = "ref", seed: int = 0, n_partitions: int = 16
) -> ParallelWorkload:
    """FFT: butterfly phases pair partitions at distance 2^s."""
    part_bytes = _PART_BYTES[scale]
    rng = np.random.default_rng(seed + 1)
    names, parts = _make_regions(n_partitions)
    tasks = []
    chunk = part_bytes // 64 // 2
    n_stages = int(np.log2(n_partitions))
    for s in range(n_stages):
        stride = 1 << s
        for p in range(n_partitions):
            q = p ^ stride
            tasks.append(
                Task(
                    home=p,
                    phase=s,
                    streams={
                        p: _local_stream(rng, p, part_bytes, chunk, "scan"),
                        q: _local_stream(rng, q, part_bytes, chunk // 2, "scan"),
                    },
                )
            )
    return ParallelWorkload(
        name="fft", tasks=tasks, region_names=names,
        partition_of_region=parts, n_partitions=n_partitions, apki=30.0,
    )


def build_parallel_delaunay(
    scale: str = "ref", seed: int = 0, n_partitions: int = 16
) -> ParallelWorkload:
    """Parallel Delaunay: spatially-partitioned insertions, boundary spill."""
    part_bytes = _PART_BYTES[scale]
    rng = np.random.default_rng(seed + 2)
    names, parts = _make_regions(n_partitions)
    tasks = []
    per_task = part_bytes // 64 // 3
    for phase in range(3):
        for p in range(n_partitions):
            for __ in range(3):
                neighbor = (p + int(rng.integers(1, 3))) % n_partitions
                tasks.append(
                    Task(
                        home=p,
                        phase=phase,
                        streams={
                            p: _local_stream(rng, p, part_bytes, per_task, "rand"),
                            neighbor: _local_stream(
                                rng, neighbor, part_bytes, per_task // 8, "rand"
                            ),
                        },
                    )
                )
    return ParallelWorkload(
        name="delaunay-par", tasks=tasks, region_names=names,
        partition_of_region=parts, n_partitions=n_partitions, apki=25.0,
    )


def _graph_tasks(
    name: str,
    scale: str,
    seed: int,
    n_partitions: int,
    n_rounds: int,
    remote_weight: float,
    apki: float,
    tasks_per_part: int = 3,
) -> ParallelWorkload:
    """Shared skeleton of the graph apps: per-round per-partition tasks
    that touch their own vertices plus neighbors across the cut."""
    part_bytes = _PART_BYTES[scale]
    rng = np.random.default_rng(seed)
    n = 8192
    graph = rmat_graph(n, 10.0, seed=seed)
    membership = partition_graph(graph, n_partitions, seed=seed)
    # Remote-access mix per partition: where do cut edges point?
    src = np.repeat(np.arange(graph.n), graph.degrees())
    dst = graph.targets
    names, parts = _make_regions(n_partitions)
    remote_mix = {}
    for p in range(n_partitions):
        sel = (membership[src] == p) & (membership[dst] != p)
        targets, counts = np.unique(membership[dst[sel]], return_counts=True)
        remote_mix[p] = (targets, counts / counts.sum()) if len(targets) else (
            np.array([(p + 1) % n_partitions]), np.array([1.0])
        )
    tasks = []
    per_task = part_bytes // 64 // 3
    for phase in range(n_rounds):
        for p in range(n_partitions):
            for __ in range(tasks_per_part):
                streams = {
                    p: _local_stream(rng, p, part_bytes, per_task, "rand")
                }
                n_remote = int(per_task * remote_weight)
                if n_remote > 0:
                    targets, probs = remote_mix[p]
                    for q in np.unique(
                        rng.choice(targets, size=min(3, len(targets)), p=probs)
                    ).tolist():
                        streams[int(q)] = _local_stream(
                            rng, int(q), part_bytes,
                            max(n_remote // 3, 1), "rand",
                        )
                tasks.append(Task(home=p, phase=phase, streams=streams))
    return ParallelWorkload(
        name=name, tasks=tasks, region_names=names,
        partition_of_region=parts, n_partitions=n_partitions, apki=apki,
    )


def build_pagerank(scale: str = "ref", seed: int = 0, n_partitions: int = 16):
    """PageRank: per-round rank gathers across the (minimized) edge cut."""
    return _graph_tasks(
        "pagerank", scale, seed + 3, n_partitions,
        n_rounds=4, remote_weight=0.25, apki=35.0,
    )


def build_connected_components(
    scale: str = "ref", seed: int = 0, n_partitions: int = 16
):
    """Label propagation until convergence: many rounds, heavy remote."""
    return _graph_tasks(
        "connectedComponents", scale, seed + 4, n_partitions,
        n_rounds=6, remote_weight=0.35, apki=40.0,
    )


def build_triangle_counting(
    scale: str = "ref", seed: int = 0, n_partitions: int = 16
):
    """Wedge checks probe neighbor adjacency lists across partitions."""
    return _graph_tasks(
        "triangleCounting", scale, seed + 5, n_partitions,
        n_rounds=3, remote_weight=0.2, apki=30.0, tasks_per_part=4,
    )


#: Fig 13's application set.
PARALLEL_APPS = {
    "mergesort": build_mergesort,
    "fft": build_fft,
    "delaunay": build_parallel_delaunay,
    "pagerank": build_pagerank,
    "connectedComponents": build_connected_components,
    "triangleCounting": build_triangle_counting,
}


def build_parallel_workload(
    name: str, scale: str = "ref", seed: int = 0, n_partitions: int = 16
) -> ParallelWorkload:
    """Build one of Fig 13's parallel applications by name."""
    try:
        builder = PARALLEL_APPS[name]
    except KeyError:
        raise ValueError(
            f"unknown parallel app {name!r}; known: {', '.join(PARALLEL_APPS)}"
        ) from None
    return builder(scale=scale, seed=seed, n_partitions=n_partitions)
