"""Tasks with data affinity.

A task is a unit of work whose input data lives (mostly) in one data
partition — the property PaWS exploits (Sec 3.4: "in many applications,
the data accessed by each task is known when the task is created").  Its
access stream is a per-region address mapping: the home partition's
region for local accesses, other partitions' regions for remote ones
(e.g. cut edges in graph algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Task", "ParallelWorkload"]


@dataclass
class Task:
    """One schedulable task.

    Attributes:
        home: the data partition (= pool) holding this task's input.
        streams: region id -> byte-address array the task touches, in
            order.  Usually dominated by the home partition's region.
        phase: barrier phase; tasks of phase p+1 only start after all
            phase-p tasks finish (parallel-for rounds).
    """

    home: int
    streams: dict[int, np.ndarray] = field(default_factory=dict)
    phase: int = 0

    @property
    def cost(self) -> int:
        """Work estimate: total accesses."""
        return int(sum(len(s) for s in self.streams.values()))


@dataclass
class ParallelWorkload:
    """A task-parallel program over partitioned data.

    Attributes:
        name: application name.
        tasks: all tasks, in creation order.
        region_names: region id -> name ("part03", "shared", ...).
        partition_of_region: region id -> partition id (-1 = shared,
            unpartitioned data).
        n_partitions: data partitions (== pools under Whirlpool+PaWS).
        apki: LLC accesses per kilo-instruction (per core).
    """

    name: str
    tasks: list[Task]
    region_names: dict[int, str]
    partition_of_region: dict[int, int]
    n_partitions: int
    apki: float = 30.0

    @property
    def total_accesses(self) -> int:
        """Accesses across all tasks."""
        return sum(t.cost for t in self.tasks)

    @property
    def n_phases(self) -> int:
        """Number of barrier phases."""
        return max((t.phase for t in self.tasks), default=0) + 1
