"""Task-parallel runtime: work stealing and PaWS (paper Sec 3.4).

- :mod:`repro.parallel.task` — tasks with data affinity and the
  :class:`ParallelWorkload` container.
- :mod:`repro.parallel.scheduler` — conventional work stealing
  (enqueue locally, steal at random) and PaWS (enqueue at the data's
  home core, steal from mesh neighbors).
- :mod:`repro.parallel.apps` — the six parallel applications of Fig 13:
  mergesort, fft, delaunay, pagerank, connectedComponents,
  triangleCounting.
"""

from repro.parallel.apps import PARALLEL_APPS, build_parallel_workload
from repro.parallel.scheduler import Schedule, schedule_tasks
from repro.parallel.task import ParallelWorkload, Task

__all__ = [
    "PARALLEL_APPS",
    "ParallelWorkload",
    "Schedule",
    "Task",
    "build_parallel_workload",
    "schedule_tasks",
]
