"""Work-stealing schedulers: conventional and PaWS (paper Sec 3.4).

Conventional work stealing enqueues tasks to the spawning thread and
steals from a random victim — great load balance, poor locality: "over
time, each core ends up accessing data used by many tasks".

PaWS (partitioned work stealing) enqueues each task at the core that
owns its input partition and steals preferentially from *mesh-neighbor*
cores, so stolen work stays close to its data.

The simulation is a discrete greedy list scheduler per barrier phase:
cores repeatedly take the next task from their own queue, stealing when
empty; task cost = its access count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nuca.geometry import MeshGeometry
from repro.parallel.task import ParallelWorkload, Task

__all__ = ["Schedule", "schedule_tasks"]


@dataclass
class Schedule:
    """Result of scheduling a parallel workload.

    Attributes:
        assignment: core id of each task (index-aligned with
            ``workload.tasks``).
        core_work: total access-cost executed per core.
        steals: number of stolen tasks.
    """

    assignment: list[int]
    core_work: np.ndarray
    steals: int = 0

    @property
    def makespan(self) -> float:
        """Load-balance proxy: max per-core work."""
        return float(self.core_work.max())

    @property
    def imbalance(self) -> float:
        """Max/mean per-core work (1.0 = perfectly balanced)."""
        mean = self.core_work.mean()
        return float(self.core_work.max() / mean) if mean > 0 else 1.0


def _steal_order(geometry: MeshGeometry, thief: int) -> list[int]:
    """Victim order for PaWS: nearest cores first."""
    er, ec = geometry.core_entries[thief]
    others = [c for c in range(geometry.n_cores) if c != thief]
    return sorted(
        others,
        key=lambda c: abs(geometry.core_entries[c][0] - er)
        + abs(geometry.core_entries[c][1] - ec),
    )


def schedule_tasks(
    workload: ParallelWorkload,
    n_cores: int,
    policy: str = "ws",
    geometry: MeshGeometry | None = None,
    seed: int = 0,
) -> Schedule:
    """Schedule all tasks onto ``n_cores`` cores.

    Args:
        workload: the parallel program.
        n_cores: cores available.
        policy: ``"ws"`` (conventional work stealing) or ``"paws"``.
        geometry: required for PaWS (neighbor-order stealing).
        seed: RNG seed for victim selection / initial spread.
    """
    if policy not in ("ws", "paws"):
        raise ValueError(f"unknown policy {policy!r}")
    if policy == "paws" and geometry is None:
        raise ValueError("paws requires the mesh geometry")
    rng = np.random.default_rng(seed)
    assignment = [-1] * len(workload.tasks)
    core_work = np.zeros(n_cores)
    steals = 0

    for phase in range(workload.n_phases):
        task_ids = [
            i for i, t in enumerate(workload.tasks) if t.phase == phase
        ]
        queues: list[list[int]] = [[] for __ in range(n_cores)]
        if policy == "ws":
            # Tasks spawn on whatever core runs the spawning loop; a
            # parallel-for splits into contiguous blocks across cores,
            # uncorrelated with data homes once phases interleave.
            spread = rng.permutation(len(task_ids))
            for j, tid in enumerate(task_ids):
                queues[spread[j] % n_cores].append(tid)
        else:
            for tid in task_ids:
                queues[workload.tasks[tid].home % n_cores].append(tid)
        # Greedy execution with stealing.
        phase_time = np.zeros(n_cores)
        while True:
            # Pick the least-loaded core that can still obtain work.
            order = np.argsort(phase_time, kind="stable")
            progressed = False
            for core in order:
                tid = _obtain(int(core), queues, policy, geometry, rng)
                if tid is None:
                    continue
                assignment[tid] = int(core)
                cost = workload.tasks[tid].cost
                phase_time[core] += cost
                core_work[core] += cost
                if _obtain.last_was_steal:
                    steals += 1
                progressed = True
                break
            if not progressed:
                break
    return Schedule(
        assignment=assignment, core_work=core_work, steals=steals
    )


def _obtain(core, queues, policy, geometry, rng):
    """Take a task for ``core``: own queue first, then steal."""
    _obtain.last_was_steal = False
    if queues[core]:
        return queues[core].pop(0)
    # Steal.
    if policy == "paws":
        victims = _steal_order(geometry, core)
    else:
        victims = rng.permutation(len(queues)).tolist()
    for v in victims:
        if v != core and queues[v]:
            _obtain.last_was_steal = True
            return queues[v].pop()  # steal from the tail
    return None


_obtain.last_was_steal = False
