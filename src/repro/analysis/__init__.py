"""Reporting helpers for the benchmark harness.

- :mod:`repro.analysis.report` — plain-text table formatting and result
  persistence (every figure/table bench writes its output under
  ``benchmarks/results/``).
- :mod:`repro.analysis.placement_map` — ASCII placement maps (Figs 3-5).
- :mod:`repro.analysis.compare` — run a workload under the paper's full
  scheme comparison set.
"""

from repro.analysis.compare import (
    STANDARD_SCHEMES,
    resolve_classifier,
    run_scheme,
    run_schemes,
)
from repro.analysis.placement_map import placement_map
from repro.analysis.report import format_table, gmean, write_result

__all__ = [
    "STANDARD_SCHEMES",
    "format_table",
    "gmean",
    "placement_map",
    "resolve_classifier",
    "run_scheme",
    "run_schemes",
    "write_result",
]
