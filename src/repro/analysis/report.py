"""Plain-text tables and result persistence for the benchmark harness."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = ["format_table", "gmean", "write_result", "results_dir"]


def results_dir() -> Path:
    """Directory for benchmark outputs (override: $REPRO_RESULTS_DIR)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def gmean(values) -> float:
    """Geometric mean."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        raise ValueError("gmean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("gmean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's output under benchmarks/results/."""
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path
