"""ASCII placement maps (the Figs 3-5 visualization).

Renders the bank mesh with one cell per bank showing which VC occupies
(the majority of) it — the textual analogue of the paper's colored
placement figures.
"""

from __future__ import annotations

from repro.nuca.geometry import MeshGeometry, Placement

__all__ = ["placement_map"]

#: Symbols assigned to VCs in rendering order.
_SYMBOLS = "PVTABCDEFGHIJKLMNOQRSUWXYZ"


def placement_map(
    geometry: MeshGeometry,
    placements: dict[str, Placement],
    core: int | None = None,
) -> str:
    """Render placements over the mesh.

    Args:
        geometry: the bank mesh.
        placements: VC name -> placement.  Within a bank, the VC holding
            the largest share is shown; '.' marks unused banks.
        core: optionally mark the owning core's entry tile with '*'.

    Returns:
        Multi-line string, one mesh row per line, plus a legend.
    """
    owner_of_bank: dict[int, str] = {}
    share_of_bank: dict[int, float] = {}
    symbols: dict[str, str] = {}
    for i, name in enumerate(placements):
        # Prefer the name's initial; fall back to the symbol pool on
        # collision.
        initial = (name[:1] or "?").upper()
        if initial in symbols.values():
            for ch in _SYMBOLS:
                if ch not in symbols.values():
                    initial = ch
                    break
        symbols[name] = initial
    for name, placement in placements.items():
        for bank, nbytes in placement.bank_bytes.items():
            if nbytes > share_of_bank.get(bank, 0.0):
                share_of_bank[bank] = nbytes
                owner_of_bank[bank] = name
    lines = []
    dim = geometry.dim
    entry = geometry.core_entries[core] if core is not None else None
    for r in range(dim):
        cells = []
        for c in range(dim):
            bank = r * dim + c
            cell = symbols.get(owner_of_bank.get(bank, ""), ".")
            if entry == (r, c):
                cell += "*"
            cells.append(cell.ljust(2))
        lines.append(" ".join(cells))
    legend = "   ".join(f"{sym}={name}" for name, sym in symbols.items())
    lines.append("")
    lines.append(f"legend: {legend}   .=unused   *=core")
    return "\n".join(lines)
