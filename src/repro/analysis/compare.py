"""Run a workload under the paper's full scheme comparison set.

The six bars of Figs 10/19/20/21: S-NUCA LRU, S-NUCA DRRIP, IdealSPD,
Awasthi, Jigsaw, Whirlpool.  Whirlpool uses the manual classification
when the app was ported (Table 2) and WhirlTool otherwise — matching how
the paper evaluates "Whirlpool" across the whole suite.

:func:`run_scheme` evaluates one (workload, scheme) cell and is the unit
the ``repro.exp`` campaign engine executes; :func:`run_schemes` loops it
over a scheme list for the classic one-app comparison.
"""

from __future__ import annotations

from typing import Callable

from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.nuca.config import SystemConfig
from repro.schemes import (
    AwasthiScheme,
    IdealSPDScheme,
    JigsawScheme,
    ManualPoolClassifier,
    SNUCAScheme,
)
from repro.schemes.base import SchemeResult
from repro.schemes.classifiers import Classifier, SingleVCClassifier
from repro.sim.driver import simulate
from repro.workloads.trace import Workload

__all__ = ["STANDARD_SCHEMES", "run_scheme", "run_schemes", "resolve_classifier"]

#: Scheme display order of the paper's breakdown figures.
STANDARD_SCHEMES = ["LRU", "DRRIP", "IdealSPD", "Awasthi", "Jigsaw", "Whirlpool"]


def _scheme_factories(bypass: bool) -> dict[str, Callable]:
    return {
        "LRU": lambda c, v: SNUCAScheme(c, v, "lru"),
        "DRRIP": lambda c, v: SNUCAScheme(c, v, "drrip"),
        "IdealSPD": IdealSPDScheme,
        "Awasthi": AwasthiScheme,
        "Jigsaw": lambda c, v: JigsawScheme(c, v, bypass=bypass),
        "Whirlpool": lambda c, v: WhirlpoolScheme(c, v, bypass=bypass),
    }


def resolve_classifier(
    spec: str,
    workload: Workload,
    whirltool_pools: int = 3,
    train_scale: str = "train",
    seed: int = 0,
) -> Classifier:
    """Build a VC classifier from a variant name.

    Variants: ``"auto"`` (manual pools when the app was ported,
    WhirlTool otherwise — the paper's Whirlpool evaluation rule),
    ``"single"`` (one process VC, the driver default),
    ``"manual"``, ``"whirltool:<k>"``.
    """
    if spec == "single":
        return SingleVCClassifier()
    if spec == "manual":
        if not workload.manual_pools:
            raise ValueError(f"{workload.name} has no manual pools")
        return ManualPoolClassifier()
    if spec == "auto":
        if workload.manual_pools:
            return ManualPoolClassifier()
        return train_whirltool(
            workload.name,
            n_pools=whirltool_pools,
            train_scale=train_scale,
            seed=seed,
        )
    if spec.startswith("whirltool:"):
        return train_whirltool(
            workload.name,
            n_pools=int(spec.split(":", 1)[1]),
            train_scale=train_scale,
            seed=seed,
        )
    raise ValueError(f"unknown classifier variant {spec!r}")


def run_scheme(
    workload: Workload,
    config: SystemConfig,
    scheme: str,
    classifier: Classifier | None = None,
    whirltool_pools: int = 3,
    train_scale: str = "train",
    seed: int = 0,
    bypass: bool = True,
    **simulate_kwargs,
) -> SchemeResult:
    """Evaluate one workload under one named scheme.

    Args:
        workload: the program.
        config: chip configuration.
        scheme: one of :data:`STANDARD_SCHEMES`.
        classifier: VC classifier; defaults to the driver's single
            process VC, except Whirlpool which follows the ``"auto"``
            rule (manual pools when ported, WhirlTool otherwise).
        whirltool_pools / train_scale / seed: WhirlTool fallback knobs.
        bypass: enable bypassing for Jigsaw and Whirlpool.
        simulate_kwargs: forwarded to :func:`repro.sim.simulate`.
    """
    factories = _scheme_factories(bypass)
    if scheme not in factories:
        raise ValueError(
            f"unknown scheme {scheme!r}; known: {', '.join(STANDARD_SCHEMES)}"
        )
    if scheme == "Whirlpool" and classifier is None:
        classifier = resolve_classifier(
            "auto",
            workload,
            whirltool_pools=whirltool_pools,
            train_scale=train_scale,
            seed=seed,
        )
    return simulate(
        workload,
        config,
        factories[scheme],
        classifier=classifier,
        **simulate_kwargs,
    )


def run_schemes(
    workload: Workload,
    config: SystemConfig,
    schemes: list[str] | None = None,
    whirlpool_classifier=None,
    whirltool_pools: int = 3,
    train_scale: str = "train",
    seed: int = 0,
    bypass: bool = True,
) -> dict[str, SchemeResult]:
    """Evaluate one workload under the requested schemes.

    Args:
        workload: the program (its name must be in the registry when
            WhirlTool training is needed).
        config: chip configuration.
        schemes: subset of :data:`STANDARD_SCHEMES` (default: all).
        whirlpool_classifier: override Whirlpool's classifier (e.g. a
            pre-trained WhirlTool classifier, or ManualPoolClassifier).
        whirltool_pools: pools for the WhirlTool fallback.
        train_scale: WhirlTool training inputs.
        seed: training workload seed.
        bypass: enable bypassing for Jigsaw and Whirlpool.
    """
    if schemes is None:
        schemes = list(STANDARD_SCHEMES)
    out: dict[str, SchemeResult] = {}
    for name in schemes:
        out[name] = run_scheme(
            workload,
            config,
            name,
            classifier=whirlpool_classifier if name == "Whirlpool" else None,
            whirltool_pools=whirltool_pools,
            train_scale=train_scale,
            seed=seed,
            bypass=bypass,
        )
    return out
