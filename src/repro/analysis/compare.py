"""Run a workload under the paper's full scheme comparison set.

The six bars of Figs 10/19/20/21: S-NUCA LRU, S-NUCA DRRIP, IdealSPD,
Awasthi, Jigsaw, Whirlpool.  Whirlpool uses the manual classification
when the app was ported (Table 2) and WhirlTool otherwise — matching how
the paper evaluates "Whirlpool" across the whole suite.
"""

from __future__ import annotations

from typing import Callable

from repro.core.whirlpool import WhirlpoolScheme
from repro.core.whirltool import train_whirltool
from repro.nuca.config import SystemConfig
from repro.schemes import (
    AwasthiScheme,
    IdealSPDScheme,
    JigsawScheme,
    ManualPoolClassifier,
    SNUCAScheme,
)
from repro.schemes.base import SchemeResult
from repro.sim.driver import simulate
from repro.workloads.trace import Workload

__all__ = ["STANDARD_SCHEMES", "run_schemes"]

#: Scheme display order of the paper's breakdown figures.
STANDARD_SCHEMES = ["LRU", "DRRIP", "IdealSPD", "Awasthi", "Jigsaw", "Whirlpool"]


def run_schemes(
    workload: Workload,
    config: SystemConfig,
    schemes: list[str] | None = None,
    whirlpool_classifier=None,
    whirltool_pools: int = 3,
    train_scale: str = "train",
    seed: int = 0,
    bypass: bool = True,
) -> dict[str, SchemeResult]:
    """Evaluate one workload under the requested schemes.

    Args:
        workload: the program (its name must be in the registry when
            WhirlTool training is needed).
        config: chip configuration.
        schemes: subset of :data:`STANDARD_SCHEMES` (default: all).
        whirlpool_classifier: override Whirlpool's classifier (e.g. a
            pre-trained WhirlTool classifier, or ManualPoolClassifier).
        whirltool_pools: pools for the WhirlTool fallback.
        train_scale: WhirlTool training inputs.
        seed: training workload seed.
        bypass: enable bypassing for Jigsaw and Whirlpool.
    """
    if schemes is None:
        schemes = list(STANDARD_SCHEMES)
    factories: dict[str, Callable] = {
        "LRU": lambda c, v: SNUCAScheme(c, v, "lru"),
        "DRRIP": lambda c, v: SNUCAScheme(c, v, "drrip"),
        "IdealSPD": IdealSPDScheme,
        "Awasthi": AwasthiScheme,
        "Jigsaw": lambda c, v: JigsawScheme(c, v, bypass=bypass),
    }
    out: dict[str, SchemeResult] = {}
    for name in schemes:
        if name == "Whirlpool":
            classifier = whirlpool_classifier
            if classifier is None:
                if workload.manual_pools:
                    classifier = ManualPoolClassifier()
                else:
                    classifier = train_whirltool(
                        workload.name,
                        n_pools=whirltool_pools,
                        train_scale=train_scale,
                        seed=seed,
                    )
            out[name] = simulate(
                workload,
                config,
                lambda c, v: WhirlpoolScheme(c, v, bypass=bypass),
                classifier=classifier,
            )
        else:
            out[name] = simulate(workload, config, factories[name])
    return out
