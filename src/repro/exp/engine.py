"""Generic job engine: run a grid of keyed jobs through a store.

The engine is deliberately agnostic about what a job *is*: anything with
a ``.key()`` method works, and the execute callable decides what a
record looks like.  ``repro.exp.runner`` instantiates it with name-based
:class:`~repro.exp.job.Job` grids and process pools; ``repro.sim.sweep``
instantiates it serially with closure-based jobs and a
:class:`~repro.exp.store.MemoryStore`.

Supervision
-----------
With a :class:`~repro.retry.RetryPolicy`, failed attempts are retried
with exponential backoff and deterministic seeded jitter up to the
policy's attempt cap; jobs that exhaust the cap are *quarantined* (a
:class:`~repro.exp.quarantine.Quarantine` sidecar, when given) instead
of retried forever.  With a ``job_timeout``, a job that overruns its
wall-clock deadline has its worker killed and reaped, and the attempt
is charged as a timeout.  A broken process pool (a worker OOM-killed or
crashed) is detected, rebuilt, and its in-flight jobs resubmitted.

Crash attribution: when the pool breaks with several jobs in flight,
the culprit is unknowable — `concurrent.futures` fails every pending
future identically — so nobody is charged; the interrupted jobs become
*suspects* and re-run one at a time, where a repeat crash is
attributable (exactly one job in flight) and charged.  Collateral
interruptions are tracked separately and bounded, so an environment
that keeps killing workers still terminates.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.exp.store import MemoryStore
from repro.retry import RetryPolicy

__all__ = ["RunReport", "run_jobs"]

#: Legacy behavior: one attempt, no backoff.
_SINGLE_ATTEMPT = RetryPolicy(max_attempts=1)


@dataclass
class RunReport:
    """Outcome of one :func:`run_jobs` call.

    Attributes:
        total: jobs in the grid.
        executed: jobs actually run this call.
        skipped: jobs whose key was already in the store.
        failures: job key -> error string (only with ``strict=False``).
        retried: resubmissions after failed or interrupted attempts.
        quarantined: keys parked in the quarantine this call (or already
            quarantined and therefore not executed).
    """

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failures: dict[str, str] = field(default_factory=dict)
    retried: int = 0
    quarantined: list[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Jobs with a stored result after this call."""
        return self.total - len(self.failures)


def _call_job(execute: Callable, job, key: str, attempt: int, obs_ctx=None):
    """Worker-side wrapper: consult the fault harness, then execute.

    The attempt number comes from the supervisor, not worker-local
    state, so injected faults keyed on "attempt N" stay deterministic
    across pool rebuilds (a respawned worker has no memory).

    ``obs_ctx`` is the supervisor's trace context (or None when
    observability is off): adopting it makes the worker's
    ``worker.attempt`` span land in the same events sidecar, nested
    under the job's ``engine.job`` submit span.
    """
    from repro.devtools import faults

    with obs.adopt(obs_ctx):
        with obs.span("worker.attempt", key=key, attempt=attempt):
            faults.maybe_inject("worker", key=key, attempt=attempt)
            return execute(job)


@dataclass
class _JobState:
    """Supervisor-side bookkeeping for one pending job."""

    job: object
    attempts: list[dict] = field(default_factory=list)
    interruptions: int = 0
    submissions: int = 0
    ready_at: float = 0.0

    def charge(self, kind: str, error: str, elapsed: float) -> None:
        self.attempts.append(
            {"kind": kind, "error": error, "elapsed": round(elapsed, 3)}
        )


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every pool process: reap hung workers that ignore SIGTERM."""
    procs = getattr(pool, "_processes", None)
    for proc in list((procs or {}).values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass


def _reap(pool: ProcessPoolExecutor) -> None:
    """Shut a (possibly broken) pool down, dropping queued work."""
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # noqa: BLE001 - best-effort teardown of a broken pool
        pass


def run_jobs(
    jobs: list,
    execute: Callable,
    store=None,
    workers: int = 1,
    strict: bool = True,
    progress: Callable[[str, object], None] | None = None,
    retry: RetryPolicy | None = None,
    job_timeout: float | None = None,
    quarantine=None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> RunReport:
    """Execute every job not already in the store.

    Args:
        jobs: objects with a stable ``.key()``; duplicates (by key) are
            executed once.
        execute: ``job -> record``.  With ``workers > 1`` it must be a
            module-level (picklable) callable and records must pickle.
        store: result store (default: a fresh :class:`MemoryStore`).
        workers: process-pool size; ``<= 1`` runs in-process.
        strict: re-raise the first job failure once its retries are
            exhausted (otherwise collect failures in the report and
            keep going).
        progress: optional ``(job_key, job)`` callback per finished job.
        retry: per-job retry policy (None: a single attempt, the legacy
            behavior).
        job_timeout: wall-clock seconds per attempt; an overrunning
            worker is killed and the attempt charged as a timeout.
            Requires ``workers > 1`` (the serial path cannot preempt
            itself and ignores it).
        quarantine: optional :class:`~repro.exp.quarantine.Quarantine`;
            jobs that exhaust retries land there with their attempt
            history, and already-quarantined keys are not executed.
        sleep / clock: injectable for tests.

    Returns:
        A :class:`RunReport`; results live in ``store``.
    """
    if store is None:
        store = MemoryStore()
    policy = retry if retry is not None else _SINGLE_ATTEMPT
    report = RunReport(total=len(jobs))
    pending: dict[str, _JobState] = {}
    for job in jobs:
        key = job.key()
        if key in store:
            report.skipped += 1
        elif quarantine is not None and key in quarantine:
            if key not in report.failures:
                report.failures[key] = (
                    "quarantined (inspect with `repro campaign quarantine`)"
                )
                report.quarantined.append(key)
                # Mirror of report.quarantined: replaying the events log
                # must reproduce the report's counts exactly.
                obs.event("job.quarantined", key=key, already=True)
        elif key not in pending:
            pending[key] = _JobState(job)

    def finish(key: str, job, record, elapsed: float = 0.0) -> None:
        store.add(key, record, job=job)
        report.executed += 1
        obs.event(
            "job.completed",
            key=key,
            elapsed_s=round(elapsed, 6),
            scheme=getattr(job, "scheme", None),
        )
        obs.counter("engine.jobs.completed")
        obs.histogram("engine.job_s", elapsed)
        if progress is not None:
            progress(key, job)

    def exhaust(key: str, state: _JobState, exc: BaseException) -> None:
        report.failures[key] = repr(exc)
        if quarantine is not None:
            quarantine.add(
                key, state.job, state.attempts, state.interruptions
            )
            report.quarantined.append(key)
            obs.event(
                "job.quarantined",
                key=key,
                error=repr(exc),
                attempts=len(state.attempts),
            )
            obs.counter("engine.jobs.quarantined")

    def charge(
        key: str, state: _JobState, kind: str, exc: BaseException, elapsed: float
    ) -> bool:
        """Record one failed attempt; True if the job may retry."""
        state.charge(kind, repr(exc), elapsed)
        obs.event(
            "job.attempt-failed",
            key=key,
            kind=kind,
            attempt=len(state.attempts),
            elapsed_s=round(elapsed, 6),
            error=repr(exc),
        )
        if len(state.attempts) >= policy.max_attempts:
            return False
        state.ready_at = clock() + policy.delay(key, len(state.attempts))
        return True

    if workers <= 1:
        for key, state in pending.items():
            while True:
                if state.submissions:
                    report.retried += 1
                    obs.event(
                        "job.retry", key=key, attempt=len(state.attempts) + 1
                    )
                    obs.counter("engine.jobs.retried")
                state.submissions += 1
                handle = obs.start_span(
                    "engine.job", key=key, attempt=len(state.attempts) + 1
                )
                t0 = clock()
                try:
                    record = _call_job(
                        execute, state.job, key, len(state.attempts) + 1
                    )
                except Exception as exc:  # noqa: BLE001 - reported per job
                    handle.end(outcome="failed", error=repr(exc))
                    if charge(key, state, "error", exc, clock() - t0):
                        sleep(max(0.0, state.ready_at - clock()))
                        continue
                    exhaust(key, state, exc)
                    if strict:
                        raise
                    break
                handle.end(outcome="completed")
                finish(key, state.job, record, clock() - t0)
                break
        return report

    return _run_pooled(
        pending,
        execute,
        workers,
        strict,
        policy,
        job_timeout,
        finish,
        exhaust,
        charge,
        report,
        sleep,
        clock,
    )


def _run_pooled(
    pending: dict[str, _JobState],
    execute: Callable,
    workers: int,
    strict: bool,
    policy: RetryPolicy,
    job_timeout: float | None,
    finish: Callable,
    exhaust: Callable,
    charge: Callable,
    report: RunReport,
    sleep: Callable[[float], None],
    clock: Callable[[], float],
) -> RunReport:
    """The supervised process-pool loop (see the module docstring)."""
    # Collateral interruptions (pool broke, culprit unknown) are not
    # charged as attempts, so they get their own bound: an environment
    # that keeps killing workers must still terminate.
    interruption_cap = max(3 * policy.max_attempts, 6)
    max_inflight = 2 * workers  # bound a crash's blast radius

    waiting: dict[str, None] = dict.fromkeys(pending)  # ordered set
    suspects: set[str] = set()
    inflight: dict = {}  # future -> key
    started: dict = {}  # future -> submit time
    spans: dict = {}  # future -> engine.job span handle
    pool = ProcessPoolExecutor(max_workers=workers)

    def handle_failure(
        key: str,
        kind: str,
        exc: BaseException,
        elapsed: float,
        suspect: bool = False,
    ) -> BaseException | None:
        """Charge one attributable failure; non-None means strict-fatal."""
        state = pending[key]
        if charge(key, state, kind, exc, elapsed):
            report.retried += 1
            obs.event(
                "job.retry",
                key=key,
                kind=kind,
                attempt=len(state.attempts) + 1,
            )
            obs.counter("engine.jobs.retried")
            waiting[key] = None
            if suspect:
                # A known crasher/hanger re-runs alone so it cannot
                # take innocents down with it again.
                suspects.add(key)
            return None
        exhaust(key, state, exc)
        return exc if strict else None

    def interrupt(key: str) -> BaseException | None:
        """Resubmit a collaterally interrupted job as a suspect."""
        state = pending[key]
        state.interruptions += 1
        obs.event(
            "job.interrupted", key=key, interruptions=state.interruptions
        )
        if state.interruptions > interruption_cap:
            exc: BaseException = RuntimeError(
                f"worker pool broke {state.interruptions} times while this "
                "job was in flight"
            )
            exhaust(key, state, exc)
            return exc if strict else None
        report.retried += 1
        obs.event(
            "job.retry",
            key=key,
            kind="interrupted",
            attempt=len(state.attempts) + 1,
        )
        obs.counter("engine.jobs.retried")
        suspects.add(key)
        waiting[key] = None
        return None

    fatal: BaseException | None = None
    try:
        while waiting or inflight:
            now = clock()
            # Submission: suspects re-run one at a time so a repeat
            # crash is attributable; otherwise fill up to the cap.
            broken = False
            attributed = False  # breakage cause already charged?
            victims: list[tuple[str, float]] = []  # (key, submit time)
            for key in list(waiting):
                if suspects:
                    if inflight or key not in suspects:
                        continue
                elif len(inflight) >= max_inflight:
                    break
                state = pending[key]
                if state.ready_at > now:
                    continue
                handle = obs.start_span(
                    "engine.job", key=key, attempt=len(state.attempts) + 1
                )
                try:
                    fut = pool.submit(
                        _call_job,
                        execute,
                        state.job,
                        key,
                        len(state.attempts) + 1,
                        obs.current_context(parent=handle.span_id),
                    )
                except BrokenProcessPool:
                    handle.end(outcome="submit-broken")
                    broken = True
                    break
                state.submissions += 1
                del waiting[key]
                inflight[fut] = key
                started[fut] = now
                spans[fut] = handle
                if suspects:
                    break  # exactly one suspect in flight

            if not broken:
                if not inflight:
                    if not waiting:
                        break
                    next_ready = min(pending[k].ready_at for k in waiting)
                    sleep(max(0.0, next_ready - clock()) + 0.001)
                    continue

                timeout = None
                wakeups = []
                if job_timeout is not None:
                    wakeups.extend(started[f] + job_timeout for f in inflight)
                wakeups.extend(
                    pending[k].ready_at
                    for k in waiting
                    if pending[k].ready_at > now
                )
                if wakeups:
                    timeout = max(0.001, min(wakeups) - now)
                done, __ = wait(
                    set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                now = clock()

                for fut in done:
                    key = inflight.pop(fut)
                    t0 = started.pop(fut)
                    handle = spans.pop(fut)
                    state = pending[key]
                    try:
                        record = fut.result()
                    except BrokenProcessPool:
                        # Attribution is decided per breakage event,
                        # once every victim is known (below).
                        handle.end(outcome="pool-broken")
                        broken = True
                        victims.append((key, t0))
                    except Exception as exc:  # noqa: BLE001 - reported per job
                        handle.end(outcome="failed", error=repr(exc))
                        suspects.discard(key)
                        fatal = fatal or handle_failure(
                            key, "error", exc, now - t0
                        )
                    else:
                        handle.end(outcome="completed")
                        suspects.discard(key)
                        finish(key, state.job, record, now - t0)

                if fatal is None and not broken and job_timeout is not None:
                    for fut in list(inflight):
                        if now - started[fut] >= job_timeout:
                            key = inflight.pop(fut)
                            t0 = started.pop(fut)
                            spans.pop(fut).end(outcome="timeout")
                            obs.event(
                                "job.timeout-kill",
                                key=key,
                                timeout_s=job_timeout,
                            )
                            suspects.discard(key)
                            fatal = fatal or handle_failure(
                                key,
                                "timeout",
                                TimeoutError(
                                    f"job exceeded {job_timeout}s wall clock"
                                ),
                                now - t0,
                                suspect=True,
                            )
                            # Kill and reap the stuck worker; the pool
                            # dies with it and is rebuilt below.  The
                            # cause is charged, so the other in-flight
                            # jobs are pure collateral.
                            broken = True
                            attributed = True
                            _kill_workers(pool)
                            break

            if broken:
                for fut in list(inflight):
                    spans.pop(fut).end(outcome="pool-broken")
                    victims.append((inflight.pop(fut), started.pop(fut)))
                if not attributed and len(victims) == 1 and fatal is None:
                    # Exactly one job was in flight when the pool died:
                    # the crash is attributable, charge it.
                    key, t0 = victims.pop()
                    suspects.discard(key)
                    fatal = fatal or handle_failure(
                        key,
                        "worker-crash",
                        BrokenProcessPool("worker died mid-job"),
                        clock() - t0,
                        suspect=True,
                    )
                for key, __ in victims:
                    # Culprit unknown (or already charged): nobody is
                    # charged an attempt, everyone re-runs in isolation.
                    suspects.discard(key)
                    fatal = fatal or interrupt(key)
                _kill_workers(pool)
                _reap(pool)
                if fatal is None:
                    pool = ProcessPoolExecutor(max_workers=workers)

            if fatal is not None:
                raise fatal
    finally:
        for handle in spans.values():
            handle.end(outcome="aborted")  # idempotent for ended spans
        if fatal is not None or waiting or inflight:
            # Abnormal exit: cancel queued futures and kill running
            # workers so no zombie processes outlive the raise.
            _kill_workers(pool)
        _reap(pool)
    return report
