"""Generic job engine: run a grid of keyed jobs through a store.

The engine is deliberately agnostic about what a job *is*: anything with
a ``.key()`` method works, and the execute callable decides what a
record looks like.  ``repro.exp.runner`` instantiates it with name-based
:class:`~repro.exp.job.Job` grids and process pools; ``repro.sim.sweep``
instantiates it serially with closure-based jobs and a
:class:`~repro.exp.store.MemoryStore`.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.exp.store import MemoryStore

__all__ = ["RunReport", "run_jobs"]


@dataclass
class RunReport:
    """Outcome of one :func:`run_jobs` call.

    Attributes:
        total: jobs in the grid.
        executed: jobs actually run this call.
        skipped: jobs whose key was already in the store.
        failures: job key -> error string (only with ``strict=False``).
    """

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Jobs with a stored result after this call."""
        return self.total - len(self.failures)


def run_jobs(
    jobs: list,
    execute: Callable,
    store=None,
    workers: int = 1,
    strict: bool = True,
    progress: Callable[[str, object], None] | None = None,
) -> RunReport:
    """Execute every job not already in the store.

    Args:
        jobs: objects with a stable ``.key()``; duplicates (by key) are
            executed once.
        execute: ``job -> record``.  With ``workers > 1`` it must be a
            module-level (picklable) callable and records must pickle.
        store: result store (default: a fresh :class:`MemoryStore`).
        workers: process-pool size; ``<= 1`` runs in-process.
        strict: re-raise the first job failure (otherwise collect them
            in the report and keep going).
        progress: optional ``(job_key, job)`` callback per finished job.

    Returns:
        A :class:`RunReport`; results live in ``store``.
    """
    if store is None:
        store = MemoryStore()
    report = RunReport(total=len(jobs))
    pending: dict[str, object] = {}
    for job in jobs:
        key = job.key()
        if key in store:
            report.skipped += 1
        elif key not in pending:
            pending[key] = job

    def finish(key: str, job, record) -> None:
        store.add(key, record, job=job)
        report.executed += 1
        if progress is not None:
            progress(key, job)

    if workers <= 1:
        for key, job in pending.items():
            try:
                record = execute(job)
            except Exception as exc:  # noqa: BLE001 - reported per job
                if strict:
                    raise
                report.failures[key] = repr(exc)
                continue
            finish(key, job, record)
        return report

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(execute, job): (key, job)
            for key, job in pending.items()
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for fut in done:
                key, job = futures[fut]
                try:
                    record = fut.result()
                except Exception as exc:  # noqa: BLE001 - reported per job
                    if strict:
                        for f in remaining:
                            f.cancel()
                        raise
                    report.failures[key] = repr(exc)
                    continue
                finish(key, job, record)
    return report
