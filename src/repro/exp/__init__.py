"""Experiment campaigns: parallel, resumable grids of simulations.

The layering, bottom-up:

- :mod:`repro.exp.job` — hashable grid cells with stable fingerprints.
- :mod:`repro.exp.store` — append-only, fingerprint-keyed result stores
  (in-memory and JSON-lines on disk).
- :mod:`repro.exp.engine` — the generic skip-done/execute/persist loop,
  serial or process-pooled, supervised: per-job timeouts, retry with
  seeded backoff, broken-pool rebuild, quarantine for poison jobs.
- :mod:`repro.exp.quarantine` — the JSONL sidecar poison jobs land in.
- :mod:`repro.exp.campaign` — declarative (apps × schemes × configs ×
  seeds × classifiers) grids that expand into jobs.
- :mod:`repro.exp.mixes` — multiprogrammed-mix grids (chip size × seeded
  mix × scheme) with a Fig-22 weighted-speedup export.
- :mod:`repro.exp.execute` / :mod:`repro.exp.runner` — the worker-side
  executor and the campaign front door, :func:`run_campaign`.

``repro.sim.sweep``, ``repro.analysis.run_schemes`` and the benchmark
harness all run on this layer; ``python -m repro campaign`` drives it
from the command line.  The heavy modules load lazily so that low-level
users (e.g. the sweep engine) do not pull in the whole scheme zoo.
"""

from repro.exp.campaign import Campaign
from repro.exp.engine import RunReport, run_jobs
from repro.exp.job import Job
from repro.exp.quarantine import Quarantine, quarantine_path_for
from repro.exp.store import MemoryStore, ResultStore

__all__ = [
    "Campaign",
    "Job",
    "MemoryStore",
    "MixCampaign",
    "Quarantine",
    "RunReport",
    "ResultStore",
    "campaign_status",
    "execute_job",
    "quarantine_path_for",
    "record_to_result",
    "result_to_record",
    "run_campaign",
    "run_jobs",
    "weighted_speedup_table",
]

_LAZY = {
    "execute_job": "repro.exp.execute",
    "record_to_result": "repro.exp.execute",
    "result_to_record": "repro.exp.execute",
    "run_campaign": "repro.exp.runner",
    "campaign_status": "repro.exp.runner",
    "MixCampaign": "repro.exp.mixes",
    "weighted_speedup_table": "repro.exp.mixes",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
