"""Quarantine: poison jobs parked in a JSONL sidecar next to the store.

A job that exhausts its retry budget is *quarantined* rather than
retried forever: the engine appends an entry — job spec, full attempt
history (kind, error, elapsed seconds), interruption count, wall-clock
stamp — to ``<store-stem>.quarantine.jsonl`` beside the ResultStore.
Subsequent campaign submissions skip quarantined keys (they show up in
the report, not the pool), and ``python -m repro campaign quarantine
list|retry|clear`` inspects, re-executes, or drops them.

The file format follows the ResultStore's discipline: append-only JSON
lines, flushed + fsynced per append, last write wins on replay, and a
truncated trailing line from a killed writer is skipped and repaired on
the next append.  ``remove``/``clear`` rewrite through a same-directory
temp + ``os.replace`` (the repo's atomic-publish rule).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["Quarantine", "quarantine_path_for"]


def quarantine_path_for(store_path: str | Path) -> Path:
    """The sidecar path for a ResultStore path (``s.jsonl`` -> ``s.quarantine.jsonl``)."""
    path = Path(store_path)
    return path.with_name(f"{path.stem}.quarantine.jsonl")


class Quarantine:
    """Append-only sidecar of quarantined jobs (last write wins)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._needs_newline = False
        if self.path.exists():
            self._replay()

    def _replay(self) -> None:
        raw = self.path.read_text(encoding="utf-8")
        self._needs_newline = bool(raw) and not raw.endswith("\n")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated trailing line from a killed run
            key = entry.get("key")
            if key is None:
                continue
            self._entries[key] = entry

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        """Quarantined job keys."""
        return self._entries.keys()

    def get(self, key: str, default=None):
        """The quarantine entry stored under ``key``, or ``default``."""
        return self._entries.get(key, default)

    def entries(self):
        """Iterate quarantine entries (dicts with key/job/attempts)."""
        return iter(self._entries.values())

    def add(
        self,
        key: str,
        job,
        attempts: list[dict],
        interruptions: int = 0,
    ) -> dict:
        """Quarantine one job with its attempt history; returns the entry."""
        job_dict = job.to_dict() if hasattr(job, "to_dict") else dict(job or {})
        entry = {
            "key": key,
            "job": job_dict,
            "attempts": [dict(a) for a in attempts],
            "interruptions": interruptions,
            "quarantined_at": time.time(),
        }
        line = json.dumps(entry, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            if self._needs_newline:
                fh.write("\n")
                self._needs_newline = False
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._entries[key] = entry
        return entry

    def remove(self, keys) -> int:
        """Drop entries by key, rewriting the sidecar atomically."""
        doomed = {k for k in keys if k in self._entries}
        if not doomed:
            return 0
        for key in doomed:
            del self._entries[key]
        if not self._entries:
            self.path.unlink(missing_ok=True)
            self._needs_newline = False
            return len(doomed)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for entry in self._entries.values():
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
        self._needs_newline = False
        return len(doomed)

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        n = len(self._entries)
        self._entries.clear()
        self.path.unlink(missing_ok=True)
        self._needs_newline = False
        return n
