"""Declarative multiprogrammed-mix campaigns (Fig 22 at any scale).

A :class:`MixCampaign` names a (chip size × mix × scheme) grid: for each
core count it draws ``n_mixes`` seeded random SPEC mixes — the same
compositions :func:`repro.workloads.mixes.make_mix` builds, pinned by the
seeded-mix regression tests — and crosses them with the scheme list.
The grid expands into ordinary mix :class:`~repro.exp.job.Job` cells, so
the PR-1 campaign runner gives it parallelism, resumability, and the
append-only result store for free; :func:`weighted_speedup_table` turns
the stored records into the Fig-22 weighted-speedup view.

Fig-22-scale runs (20 mixes × 4/16 cores) and larger are one command::

    python -m repro campaign mixes --cores 4,16 --mixes 20 --workers 8
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.exp.job import Job
from repro.exp.store import ResultStore
from repro.workloads.mixes import mix_names, mix_seeds

__all__ = ["MixCampaign", "weighted_speedup_table"]

#: Core count -> system-configuration name.
_CONFIG_FOR_CORES = {4: "4core", 16: "16core"}


@dataclass
class MixCampaign:
    """One multiprogrammed-mix experiment grid.

    Attributes:
        name: campaign name (labels the store / exports).
        n_cores: chip sizes to run (4 and/or 16; each value is both the
            core count and the mix width, as in Fig 22).
        n_mixes: random mixes per chip size.
        schemes: mix schemes (``Jigsaw``/``Whirlpool`` with optional
            ``-NoBypass``, ``S-NUCA/LRU``, ``S-NUCA/DRRIP``, ``IdealSPD``,
            ``Awasthi``).
        baseline: scheme the weighted-speedup table normalizes to.
        scale: workload input scale.
        base_seed: seed of mix ``k`` is ``base_seed + k`` (the
            :func:`~repro.workloads.mixes.make_mixes` convention).
        n_intervals / sample_shift: simulation overrides.
        classifier: per-app VC classifier spec (``"auto"`` follows the
            paper's rule: pooled VCs for Whirlpool, one process VC
            otherwise).
    """

    name: str = "mixes"
    n_cores: list[int] = field(default_factory=lambda: [4])
    n_mixes: int = 8
    schemes: list[str] = field(
        default_factory=lambda: ["Jigsaw", "Whirlpool", "S-NUCA/LRU"]
    )
    baseline: str = "Jigsaw"
    scale: str = "train"
    base_seed: int = 1000
    n_intervals: int | None = 8
    sample_shift: int | None = None
    classifier: str = "auto"

    def __post_init__(self) -> None:
        unknown = set(self.n_cores) - set(_CONFIG_FOR_CORES)
        if unknown:
            raise ValueError(
                f"unsupported core counts {sorted(unknown)}; "
                f"known: {sorted(_CONFIG_FOR_CORES)}"
            )
        if self.n_mixes <= 0:
            raise ValueError(f"n_mixes must be positive, got {self.n_mixes}")
        if not self.schemes:
            raise ValueError("schemes must not be empty")
        if self.baseline not in self.schemes:
            raise ValueError(
                f"baseline {self.baseline!r} must be one of the schemes"
            )

    def mixes(self, cores: int) -> list[tuple[str, tuple[int, ...]]]:
        """The ``(app-string, per-app seeds)`` compositions for one size."""
        out = []
        for k in range(self.n_mixes):
            seed = self.base_seed + k
            names = mix_names(cores, seed)
            out.append(("+".join(names), tuple(mix_seeds(cores, seed))))
        return out

    def job(
        self, cores: int, app: str, seeds: tuple[int, ...], scheme: str
    ) -> Job:
        """The job for one (chip size, mix, scheme) cell.

        The single construction point for the campaign's jobs — grid
        expansion and store lookups must build identical jobs or their
        fingerprints diverge.
        """
        return Job(
            app=app,
            scheme=scheme,
            config=_CONFIG_FOR_CORES[cores],
            scale=self.scale,
            classifier=self.classifier,
            n_intervals=self.n_intervals,
            sample_shift=self.sample_shift,
            kind="mix",
            mix_seeds=seeds,
        )

    def jobs(self) -> list[Job]:
        """Expand the grid into mix jobs (deterministic order)."""
        return [
            self.job(cores, app, seeds, scheme)
            for cores in self.n_cores
            for app, seeds in self.mixes(cores)
            for scheme in self.schemes
        ]

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MixCampaign":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    @classmethod
    def from_json_file(cls, path: str | Path) -> "MixCampaign":
        """Load a mix-campaign spec from a JSON file."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str | Path) -> None:
        """Write the spec as JSON (atomically: temp sibling + replace)."""
        dst = Path(path)
        tmp = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
            os.replace(tmp, dst)
        finally:
            tmp.unlink(missing_ok=True)


def weighted_speedup_table(
    campaign: MixCampaign, store: ResultStore | str | Path
) -> str:
    """Per-mix weighted speedups vs. the baseline, one table per chip size.

    Weighted speedup of a mix under a scheme is ``Σ IPC / Σ IPC_baseline``
    (the Fig-22 normalization).  Mixes whose jobs are still pending show
    ``nan`` — the table is safe to render mid-campaign.
    """
    from repro.analysis import format_table, gmean

    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    sections = []
    others = [s for s in campaign.schemes if s != campaign.baseline]
    for cores in campaign.n_cores:
        rows = []
        per_scheme: dict[str, list[float]] = {s: [] for s in others}
        for k, (app, seeds) in enumerate(campaign.mixes(cores)):
            def record(scheme: str):
                return store.get(campaign.job(cores, app, seeds, scheme).key())

            base = record(campaign.baseline)
            base_ipc = sum(base["ipcs"]) if base else float("nan")
            row = [k, app]
            for scheme in others:
                rec = record(scheme)
                if rec and base:
                    speedup = sum(rec["ipcs"]) / base_ipc
                    per_scheme[scheme].append(speedup)
                else:
                    speedup = float("nan")
                row.append(round(speedup, 4))
            rows.append(row)
        table = format_table(
            ["mix", "apps"] + [f"{s} vs {campaign.baseline}" for s in others],
            rows,
        )
        gms = "  ".join(
            f"{s}: {gmean(v):.4f}" if v else f"{s}: n/a"
            for s, v in per_scheme.items()
        )
        sections.append(
            f"--- {cores}-core, {campaign.n_mixes} mixes ---\n{table}\n"
            f"gmean weighted speedup vs {campaign.baseline}: {gms}"
        )
    return "\n\n".join(sections)
