"""Result stores: append-only, fingerprint-keyed experiment records.

Two implementations share one tiny interface (``__contains__``, ``get``,
``add``, ``keys``):

- :class:`MemoryStore` — a dict, for in-process memoization (the sweep
  and benchmark harnesses).
- :class:`ResultStore` — a JSON-lines file, one record per line, flushed
  on every append.  Appending is crash-safe in the sense that a killed
  run leaves at most one truncated trailing line, which is skipped on
  load; rerunning the campaign then re-executes exactly the missing
  jobs (resumability).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["MemoryStore", "ResultStore"]


class MemoryStore:
    """In-process result store (records may be arbitrary objects)."""

    def __init__(self) -> None:
        self._records: dict[str, object] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str, default=None):
        """The record stored under ``key``, or ``default``."""
        return self._records.get(key, default)

    def add(self, key: str, record, job=None) -> None:
        """Store one record (``job`` is accepted for interface parity)."""
        self._records[key] = record

    def keys(self):
        """Stored keys."""
        return self._records.keys()


class ResultStore:
    """Append-only JSON-lines store keyed by job fingerprints.

    Each line is ``{"key": ..., "job": {...}, "result": {...}}``.  The
    file is the source of truth: the in-memory index is rebuilt from it
    on construction, so separate processes appending to the same path
    (e.g. a resumed campaign) converge on the union of their records.
    Duplicate keys are allowed on disk; the last one wins.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._jobs: dict[str, dict] = {}
        self._needs_newline = False
        self._duplicates = 0
        self._corrupt_lines = 0
        if self.path.exists():
            self._replay()

    def _replay(self) -> None:
        raw = self.path.read_text(encoding="utf-8")
        # A killed writer can leave a final line without its newline; the
        # next append must not concatenate onto it.
        self._needs_newline = bool(raw) and not raw.endswith("\n")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                self._corrupt_lines += 1
                continue  # truncated trailing line from a killed run
            key = entry.get("key")
            if key is None:
                self._corrupt_lines += 1
                continue
            if key in self._records:
                # Replay is last-write-wins: a retried job's second
                # append deterministically shadows the first.
                self._duplicates += 1
            # A null result (a worker that died between claiming a job
            # and producing output) must read back as an empty record,
            # not None — records()/export_table call result.get(...).
            self._records[key] = entry.get("result") or {}
            self._jobs[key] = entry.get("job", {})

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str, default=None):
        """The result record stored under ``key``, or ``default``."""
        return self._records.get(key, default)

    def job(self, key: str) -> dict | None:
        """The job spec recorded alongside ``key``'s result."""
        return self._jobs.get(key)

    def keys(self):
        """Stored keys."""
        return self._records.keys()

    def records(self):
        """Iterate ``(key, job_dict, result_dict)`` triples."""
        for key, result in self._records.items():
            yield key, self._jobs.get(key, {}), result

    def add(self, key: str, record: dict, job=None) -> None:
        """Append one record and flush it to disk."""
        if record is None:
            record = {}  # same normalization replay applies to null lines
        job_dict = job.to_dict() if hasattr(job, "to_dict") else (job or {})
        entry = {"key": key, "job": job_dict, "result": record}
        line = json.dumps(entry, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            if self._needs_newline:
                fh.write("\n")
                self._needs_newline = False
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if key in self._records:
            self._duplicates += 1
        self._records[key] = record
        self._jobs[key] = job_dict

    def verify(self) -> dict:
        """Integrity summary of the on-disk file.

        Re-replays the file from disk and reports what a fresh open
        would see: distinct records kept, duplicate-key lines shadowed
        by a later write, corrupt/truncated lines skipped, and whether
        the final line is missing its newline (a writer died mid-append
        and the next append will repair it).
        """
        fresh = ResultStore(self.path) if self.path.exists() else self
        return {
            "path": str(self.path),
            "records": len(fresh._records),
            "duplicates": fresh._duplicates,
            "corrupt_lines": fresh._corrupt_lines,
            "torn_tail": fresh._needs_newline,
        }

    def export_table(self, metric: str = "cycles") -> str:
        """A plain-text (app × scheme) table of one result metric."""
        from repro.analysis.report import format_table

        cells: dict[tuple[str, str], float] = {}
        for __, job, result in self.records():
            app = job.get("app", "?")
            scheme = job.get("scheme", result.get("name", "?"))
            value = result.get(metric)
            if value is not None:
                cells[(app, scheme)] = value
        # Sorted axes: record order is completion order, which varies
        # across parallel runs, and the table must not.
        apps = sorted({app for app, __ in cells})
        schemes = sorted({scheme for __, scheme in cells})
        rows = [
            [app] + [cells.get((app, s), float("nan")) for s in schemes]
            for app in apps
        ]
        return format_table(["app"] + schemes, rows)
