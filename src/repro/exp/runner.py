"""Campaign runner: expand, skip-done, execute in parallel, persist.

The runner glues the declarative :class:`~repro.exp.campaign.Campaign`
to the generic engine with the name-based executor.  Because jobs are
fingerprint-keyed and the store is append-only, submitting the same
campaign again — after adding grid points, or after a crash — executes
exactly the jobs whose results are missing.

Campaigns run supervised by default: failed jobs retry with exponential
backoff (:data:`CAMPAIGN_RETRY`), and jobs that exhaust the cap are
parked in a quarantine sidecar next to the store rather than retried
forever (``repro campaign quarantine`` manages them).
"""

from __future__ import annotations

from pathlib import Path

from repro import obs
from repro.exp.campaign import Campaign
from repro.exp.engine import RunReport, run_jobs
from repro.exp.execute import execute_job
from repro.exp.quarantine import Quarantine, quarantine_path_for
from repro.exp.store import ResultStore
from repro.retry import RetryPolicy

__all__ = ["CAMPAIGN_RETRY", "run_campaign", "campaign_status"]

#: Default supervision for campaign jobs: a transient worker failure
#: costs a re-run, not a dead campaign; a poison job costs 4 attempts,
#: not an infinite loop.
CAMPAIGN_RETRY = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=2.0)


def run_campaign(
    campaign: Campaign,
    store: ResultStore | str | Path,
    workers: int = 1,
    strict: bool = True,
    progress=None,
    retry: RetryPolicy | None = CAMPAIGN_RETRY,
    job_timeout: float | None = None,
    quarantine: Quarantine | None = None,
) -> RunReport:
    """Run every missing job of a campaign.

    Args:
        campaign: the grid.
        store: result store, or a path to open one at.
        workers: process-pool size (``<= 1`` runs serially in-process).
        strict: raise on the first job that exhausts its retries
            (otherwise collect failures in the report).
        progress: optional ``(key, job)`` callback per finished job.
        retry: retry policy (default :data:`CAMPAIGN_RETRY`; None means
            a single attempt per job).
        job_timeout: optional per-attempt wall-clock cap in seconds;
            an overrunning worker is killed and the attempt retried
            (needs ``workers > 1``).
        quarantine: where poison jobs land; defaults to the
            ``<store>.quarantine.jsonl`` sidecar when the store is
            file-backed.  Already-quarantined keys are skipped.

    Returns:
        The engine's :class:`~repro.exp.engine.RunReport`.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    if quarantine is None:
        quarantine = Quarantine(quarantine_path_for(store.path))
    # Campaigns trace by default into the <store>.events.jsonl sidecar
    # (REPRO_OBS=0 opts out; an already-active session wins outright) —
    # that is what `campaign status` and `obs report` read back.
    with obs.session(path=obs.events_path_for(store.path)):
        with obs.span(
            "campaign.run",
            campaign=campaign.name,
            workers=workers,
        ) as campaign_span:
            report = run_jobs(
                campaign.jobs(),
                execute_job,
                store=store,
                workers=workers,
                strict=strict,
                progress=progress,
                retry=retry,
                job_timeout=job_timeout,
                quarantine=quarantine,
            )
            campaign_span.note(
                executed=report.executed,
                skipped=report.skipped,
                retried=report.retried,
                quarantined=len(report.quarantined),
            )
    return report


def _timing_rollups(events_path: Path) -> dict[str, dict[str, float | int]]:
    """Per-scheme duration percentiles from the events sidecar, if any.

    Returns ``{scheme: {"jobs": n, "p50_s": ..., "p95_s": ...}}`` from
    the ``job.completed`` events a traced campaign leaves behind, or an
    empty dict when the campaign ran untraced.
    """
    if not events_path.exists():
        return {}
    from repro.obs.report import load_events, rollup

    return dict(rollup(load_events(events_path)).get("schemes", {}))


def campaign_status(
    campaign: Campaign, store: ResultStore | str | Path
) -> dict:
    """Completion summary: total/done/pending, plus a per-scheme split.

    When the campaign ran traced (the default), the events sidecar adds
    per-scheme wall-clock rollups under ``"timings"`` — duration p50 and
    p95 over every completed job the log has seen.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    quarantine = Quarantine(quarantine_path_for(store.path))
    jobs = campaign.jobs()
    # Job keys hash the full job spec — compute each exactly once and
    # derive every view from that, instead of re-fingerprinting the grid
    # three times over.
    done_flags = [(job, job.key()) for job in jobs]
    done_flags = [(job, key in store, key) for job, key in done_flags]
    n_done = sum(1 for __, is_done, __k in done_flags if is_done)
    n_quarantined = sum(
        1 for __, is_done, key in done_flags
        if not is_done and key in quarantine
    )
    per_scheme: dict[str, dict[str, int]] = {}
    for job, is_done, __ in done_flags:
        row = per_scheme.setdefault(job.scheme, {"done": 0, "pending": 0})
        row["done" if is_done else "pending"] += 1
    return {
        "name": campaign.name,
        "total": len(jobs),
        "done": n_done,
        "pending": len(jobs) - n_done,
        "quarantined": n_quarantined,
        "per_scheme": per_scheme,
        "timings": _timing_rollups(obs.events_path_for(store.path)),
    }
