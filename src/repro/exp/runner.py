"""Campaign runner: expand, skip-done, execute in parallel, persist.

The runner glues the declarative :class:`~repro.exp.campaign.Campaign`
to the generic engine with the name-based executor.  Because jobs are
fingerprint-keyed and the store is append-only, submitting the same
campaign again — after adding grid points, or after a crash — executes
exactly the jobs whose results are missing.
"""

from __future__ import annotations

from pathlib import Path

from repro.exp.campaign import Campaign
from repro.exp.engine import RunReport, run_jobs
from repro.exp.execute import execute_job
from repro.exp.store import ResultStore

__all__ = ["run_campaign", "campaign_status"]


def run_campaign(
    campaign: Campaign,
    store: ResultStore | str | Path,
    workers: int = 1,
    strict: bool = True,
    progress=None,
) -> RunReport:
    """Run every missing job of a campaign.

    Args:
        campaign: the grid.
        store: result store, or a path to open one at.
        workers: process-pool size (``<= 1`` runs serially in-process).
        strict: raise on the first failing job (otherwise collect
            failures in the report).
        progress: optional ``(key, job)`` callback per finished job.

    Returns:
        The engine's :class:`~repro.exp.engine.RunReport`.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    return run_jobs(
        campaign.jobs(),
        execute_job,
        store=store,
        workers=workers,
        strict=strict,
        progress=progress,
    )


def campaign_status(
    campaign: Campaign, store: ResultStore | str | Path
) -> dict:
    """Completion summary: total/done/pending, plus a per-scheme split."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    jobs = campaign.jobs()
    # Job keys hash the full job spec — compute each exactly once and
    # derive every view from that, instead of re-fingerprinting the grid
    # three times over.
    done_flags = [(job, job.key() in store) for job in jobs]
    n_done = sum(1 for __, is_done in done_flags if is_done)
    per_scheme: dict[str, dict[str, int]] = {}
    for job, is_done in done_flags:
        row = per_scheme.setdefault(job.scheme, {"done": 0, "pending": 0})
        row["done" if is_done else "pending"] += 1
    return {
        "name": campaign.name,
        "total": len(jobs),
        "done": n_done,
        "pending": len(jobs) - n_done,
        "per_scheme": per_scheme,
    }
