"""Worker-side job execution.

:func:`execute_job` is the module-level callable the campaign engine
submits to its process pool: it rebuilds everything a job names
(workload, configuration, classifier) from primitives, runs the
simulation, and returns a JSON-serializable record.  Workers keep small
per-process caches of built workloads and trained WhirlTool classifiers,
and share the on-disk profile cache (``sim/profiling.py``) with every
other worker — so a grid over schemes pays for each profile once.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.analysis.compare import resolve_classifier, run_scheme
from repro.nuca import four_core_config, sixteen_core_config
from repro.nuca.config import SystemConfig
from repro.schemes.base import SchemeResult
from repro.exp.job import Job
from repro.workloads import build_workload
from repro.workloads.trace import Workload

__all__ = [
    "CONFIGS",
    "cached_workload",
    "execute_job",
    "record_to_result",
    "result_to_record",
]

#: Named system configurations a job may reference.
CONFIGS = {
    "4core": four_core_config,
    "16core": sixteen_core_config,
}

# Per-process caches.  Ref-scale traces are large, so only a couple are
# kept; train-scale traces (mix methodology) are small and cached wider.
_WORKLOAD_CACHE: dict[str, OrderedDict] = {}
_CACHE_SIZES = {"ref": 2, "train": 32}
_CLASSIFIER_CACHE: dict[tuple, object] = {}
_CLUSTERING_CACHE: dict[tuple, object] = {}


def cached_workload(name: str, scale: str, seed: int) -> Workload:
    """Build a workload through the per-process LRU cache."""
    cache = _WORKLOAD_CACHE.setdefault(scale, OrderedDict())
    key = (name, seed)
    if key in cache:
        cache.move_to_end(key)
        return cache[key]
    workload = build_workload(name, scale=scale, seed=seed)
    cache[key] = workload
    while len(cache) > _CACHE_SIZES.get(scale, 2):
        cache.popitem(last=False)
    return workload


def _whirltool_classifier(app: str, n_pools: int, seed: int):
    """A WhirlTool classifier cutting one cached clustering at k pools.

    ``train_whirltool`` re-profiles and re-clusters per call; a pool
    sweep over k only needs the merge tree once per (app, seed), so the
    clustering is cached and cut per k — same results, one training.
    """
    from repro.core.whirltool import (
        WhirlToolAnalyzer,
        WhirlToolClassifier,
        WhirlToolProfiler,
    )

    key = (app, seed)
    if key not in _CLUSTERING_CACHE:
        train = cached_workload(app, "train", seed)
        profile = WhirlToolProfiler().profile(train)
        _CLUSTERING_CACHE[key] = WhirlToolAnalyzer().cluster(profile)
    return WhirlToolClassifier(_CLUSTERING_CACHE[key], n_pools=n_pools)


def _cached_classifier(spec: str, workload: Workload, seed: int):
    key = (spec, workload.name, seed)
    if key not in _CLASSIFIER_CACHE:
        if spec == "auto" and not workload.manual_pools:
            classifier = _whirltool_classifier(workload.name, 3, seed)
        elif spec.startswith("whirltool:"):
            classifier = _whirltool_classifier(
                workload.name, int(spec.split(":", 1)[1]), seed
            )
        else:
            classifier = resolve_classifier(spec, workload, seed=seed)
        _CLASSIFIER_CACHE[key] = classifier
    return _CLASSIFIER_CACHE[key]


def _config_for(job: Job) -> SystemConfig:
    try:
        config = CONFIGS[job.config]()
    except KeyError:
        raise ValueError(
            f"unknown config {job.config!r}; known: {', '.join(CONFIGS)}"
        ) from None
    if job.axis is not None:
        from repro.sim.sweep import vary_config

        config = vary_config(config, job.axis, job.value)
    return config


def result_to_record(result: SchemeResult) -> dict:
    """Serialize a :class:`SchemeResult` (totals only, no history)."""
    return {
        "name": result.name,
        "base_cpi": result.base_cpi,
        "instructions": result.instructions,
        "hits": result.hits,
        "misses": result.misses,
        "bypasses": result.bypasses,
        "stall_cycles": result.stall_cycles,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "energy": {
            "network": result.energy.network,
            "bank": result.energy.bank,
            "memory": result.energy.memory,
        },
    }


def record_to_result(record: dict) -> SchemeResult:
    """Rebuild a :class:`SchemeResult` from a record (history is lost)."""
    from repro.nuca.energy import EnergyBreakdown

    return SchemeResult(
        name=record["name"],
        base_cpi=record["base_cpi"],
        instructions=record["instructions"],
        hits=record["hits"],
        misses=record["misses"],
        bypasses=record["bypasses"],
        stall_cycles=record["stall_cycles"],
        energy=EnergyBreakdown(**record["energy"]),
    )


def _execute_single(job: Job) -> dict:
    config = _config_for(job)
    workload = cached_workload(job.app, job.scale, job.seed)
    classifier = None
    if job.classifier != "auto" or job.scheme == "Whirlpool":
        classifier = _cached_classifier(job.classifier, workload, job.seed)
    sim_kwargs = {}
    if job.n_intervals is not None:
        sim_kwargs["n_intervals"] = job.n_intervals
    if job.sample_shift is not None:
        sim_kwargs["sample_shift"] = job.sample_shift
    result = run_scheme(
        workload,
        config,
        job.scheme,
        classifier=classifier,
        seed=job.seed,
        **sim_kwargs,
    )
    return result_to_record(result)


def _mix_factory(scheme: str):
    from repro.core.whirlpool import WhirlpoolScheme
    from repro.schemes import (
        AwasthiScheme,
        IdealSPDScheme,
        JigsawScheme,
        SNUCAScheme,
    )

    if scheme.startswith("S-NUCA"):
        __, __, repl = scheme.partition("/")
        replacement = (repl or "lru").lower()
        return lambda c, v: SNUCAScheme(c, v, replacement)
    if scheme == "IdealSPD":
        return IdealSPDScheme
    if scheme == "Awasthi":
        return AwasthiScheme
    base, __, suffix = scheme.partition("-")
    bypass = suffix != "NoBypass"
    if base == "Jigsaw":
        return lambda c, v: JigsawScheme(c, v, bypass=bypass)
    if base == "Whirlpool":
        return lambda c, v: WhirlpoolScheme(c, v, bypass=bypass)
    raise ValueError(f"unknown mix scheme {scheme!r}")


def _execute_mix(job: Job) -> dict:
    from repro.sim.multi import simulate_mix

    config = _config_for(job)
    names = job.apps()
    seeds = job.mix_seeds or tuple(job.seed for __ in names)
    if len(seeds) != len(names):
        raise ValueError("mix_seeds length must match the mix's app count")
    workloads = [
        cached_workload(n, job.scale, s) for n, s in zip(names, seeds)
    ]
    spec = job.classifier
    if spec == "auto":
        # The paper's mix rule: Whirlpool variants get pooled VCs, the
        # Jigsaw baseline a single process VC per program.
        spec = "whirltool:3" if job.scheme.startswith("Whirlpool") else "single"
    classifiers = [
        _cached_classifier(spec, w, s) for w, s in zip(workloads, seeds)
    ]
    result = simulate_mix(
        workloads,
        config,
        _mix_factory(job.scheme),
        classifiers=classifiers,
        n_intervals=job.n_intervals if job.n_intervals is not None else 16,
        sample_shift=job.sample_shift,
    )
    total = sum(r.cycles for r in result.per_app)
    return {
        "name": result.scheme_name,
        "scheme": job.scheme,
        "ipcs": [r.ipc for r in result.per_app],
        "cycles": total,
        "energy": {
            "network": result.energy.network,
            "bank": result.energy.bank,
            "memory": result.energy.memory,
        },
    }


def execute_job(job: Job) -> dict:
    """Run one job and return its result record."""
    from repro import obs
    from repro.devtools import faults

    with obs.span(
        "job.execute", key=job.key(), kind=job.kind, scheme=job.scheme
    ):
        faults.maybe_inject("execute", key=job.key())
        if job.kind == "mix":
            return _execute_mix(job)
        return _execute_single(job)
