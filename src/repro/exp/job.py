"""Hashable experiment jobs.

A :class:`Job` is one cell of an experiment grid: one workload (or mix)
under one scheme on one configuration.  Jobs are frozen dataclasses of
primitives only, so they pickle cleanly across process boundaries and
hash to a stable fingerprint (:meth:`Job.key`) that keys the result
store — the same idea as ``sim/profiling.py``'s cache fingerprints, one
layer up.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

__all__ = ["Job"]


@dataclass(frozen=True)
class Job:
    """One experiment-grid cell.

    Attributes:
        app: workload name, or a ``"+"``-joined list of names for a
            multiprogrammed mix (``kind == "mix"``).
        scheme: scheme name.  Single-app jobs accept the
            :data:`~repro.analysis.compare.STANDARD_SCHEMES` names; mix
            jobs accept ``Jigsaw``/``Whirlpool`` with an optional
            ``-NoBypass`` suffix.
        config: system-configuration name (``"4core"`` or ``"16core"``).
        scale: workload input scale (``"ref"`` or ``"train"``).
        seed: workload RNG seed (single-app jobs).
        classifier: VC-classifier variant — ``"auto"`` (manual pools when
            ported, WhirlTool otherwise), ``"single"``, ``"manual"``, or
            ``"whirltool:<k>"``.
        axis / value: optional one-parameter configuration override,
            applied with :func:`repro.sim.sweep.vary_config`.
        n_intervals / sample_shift: simulation overrides (None = driver
            defaults).
        kind: ``"single"`` or ``"mix"``.
        mix_seeds: per-app workload seeds for mix jobs (defaults to
            ``seed`` for every app).
    """

    app: str
    scheme: str
    config: str = "4core"
    scale: str = "ref"
    seed: int = 0
    classifier: str = "auto"
    axis: str | None = None
    value: float | None = None
    n_intervals: int | None = None
    sample_shift: int | None = None
    kind: str = "single"
    mix_seeds: tuple[int, ...] | None = None

    def key(self) -> str:
        """Stable fingerprint of this job (keys the result store)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def apps(self) -> list[str]:
        """The job's workload names (one for single-app jobs)."""
        return self.app.split("+") if self.kind == "mix" else [self.app]

    def to_dict(self) -> dict:
        """JSON-serializable representation (tuples become lists)."""
        d = asdict(self)
        if d["mix_seeds"] is not None:
            d["mix_seeds"] = list(d["mix_seeds"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in d.items() if k in known}
        if kwargs.get("mix_seeds") is not None:
            kwargs["mix_seeds"] = tuple(kwargs["mix_seeds"])
        return cls(**kwargs)
