"""Declarative experiment campaigns.

A :class:`Campaign` names the axes of a grid — apps × schemes × configs
× seeds × classifier variants, optionally crossed with one
configuration-parameter sweep — and expands into the corresponding
:class:`~repro.exp.job.Job` list.  Campaigns round-trip through JSON so
they can be submitted from the CLI (``python -m repro campaign``).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro.exp.job import Job

__all__ = ["Campaign"]


@dataclass
class Campaign:
    """One experiment grid.

    Every list field is one grid axis; the job list is their cartesian
    product (× ``values`` when ``axis`` is set).

    Attributes:
        name: campaign name (labels the store / exports).
        apps: workload names (``"a+b"`` entries denote mixes).
        schemes: scheme names per app.
        configs: system-configuration names.
        seeds: workload seeds.
        classifiers: classifier variants (see :class:`Job`).
        scale: input scale for every job.
        axis / values: optional configuration sweep crossed into the grid.
        n_intervals / sample_shift: simulation overrides.
    """

    name: str = "campaign"
    apps: list[str] = field(default_factory=list)
    schemes: list[str] = field(default_factory=list)
    configs: list[str] = field(default_factory=lambda: ["4core"])
    seeds: list[int] = field(default_factory=lambda: [0])
    classifiers: list[str] = field(default_factory=lambda: ["auto"])
    scale: str = "ref"
    axis: str | None = None
    values: list[float] | None = None
    n_intervals: int | None = None
    sample_shift: int | None = None

    def jobs(self) -> list[Job]:
        """Expand the grid into jobs (deterministic order)."""
        if self.axis is not None and not self.values:
            raise ValueError(
                f"campaign {self.name!r} sets axis={self.axis!r} but no values"
            )
        points = self.values if self.axis is not None else [None]
        out: list[Job] = []
        for app in self.apps:
            for scheme in self.schemes:
                for config in self.configs:
                    for seed in self.seeds:
                        for classifier in self.classifiers:
                            for value in points or [None]:
                                out.append(
                                    Job(
                                        app=app,
                                        scheme=scheme,
                                        config=config,
                                        scale=self.scale,
                                        seed=seed,
                                        classifier=classifier,
                                        axis=self.axis if value is not None else None,
                                        value=value,
                                        n_intervals=self.n_intervals,
                                        sample_shift=self.sample_shift,
                                        kind="mix" if "+" in app else "single",
                                    )
                                )
        return out

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "Campaign":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    @classmethod
    def from_json_file(cls, path: str | Path) -> "Campaign":
        """Load a campaign spec from a JSON file."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str | Path) -> None:
        """Write the spec as JSON (atomically: temp sibling + replace)."""
        dst = Path(path)
        tmp = dst.parent / f".{dst.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
            os.replace(tmp, dst)
        finally:
            tmp.unlink(missing_ok=True)
